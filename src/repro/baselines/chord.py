"""Chord (Stoica et al., SIGCOMM'01) on the shared simulation substrate.

The structured-DHT baseline the paper's related work measures itself
against.  Implemented faithfully at the routing level:

* IDs on a ring of size ``2**m``; node responsible for a key = its
  **successor** on the ring.
* Finger table: entry ``i`` points at ``successor(n + 2**i)``.
* Successor list of length ``r`` for failure tolerance.
* Greedy message-driven lookup: forward to the closest *preceding* finger;
  terminal when the key falls between predecessor and self.

As with TreeP, the experiment harness builds the converged steady state
directly (fingers computed from the full membership) and then kills nodes;
the per-step "maintenance" purges dead fingers/successors and reroutes
through the survivors, mirroring :mod:`repro.core.repair`.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


from repro.core.lookup import LookupResult, LookupAlgorithm
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel, UniformLatency
from repro.sim.network import Datagram, Network, Process
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class ChordLookup:
    request_id: int
    origin: int
    target: int
    hops: int = 0

    wire_size: int = 44


@dataclass(frozen=True)
class ChordReply:
    request_id: int
    target: int
    found: bool
    hops: int

    wire_size: int = 40


@dataclass
class ChordPending:
    request_id: int
    target: int
    timeout_event: object = None
    result: Optional[LookupResult] = None


class ChordNode(Process):
    """One Chord peer: fingers, successor list, greedy routing."""

    def __init__(self, ident: int, m_bits: int, succ_count: int = 4) -> None:
        super().__init__(ident)
        self.ident = ident
        self.m_bits = m_bits
        self.ring = 1 << m_bits
        self.fingers: List[int] = []
        self.successors: List[int] = []
        self.predecessor: Optional[int] = None
        self.succ_count = succ_count
        self.pending: Dict[int, ChordPending] = {}
        self.results: List[LookupResult] = []
        self._rid = itertools.count(1)
        self.lookup_timeout = 30.0

    # -------------------------------------------------------------- helpers
    def _in_range(self, x: int, a: int, b: int) -> bool:
        """x in (a, b] on the ring."""
        if a < b:
            return a < x <= b
        return x > a or x <= b

    def owns(self, key: int) -> bool:
        """Responsible iff key in (predecessor, self]."""
        if self.predecessor is None:
            return True
        return self._in_range(key, self.predecessor, self.ident)

    def closest_preceding(self, key: int) -> Optional[int]:
        """Closest live-believed finger strictly preceding *key*."""
        for f in reversed(self.fingers):
            if f != self.ident and self._in_range(f, self.ident, (key - 1) % self.ring):
                return f
        for s in self.successors:
            if s != self.ident and self._in_range(s, self.ident, (key - 1) % self.ring):
                return s
        return self.successors[0] if self.successors else None

    # --------------------------------------------------------------- lookup
    def issue_lookup(self, target: int) -> ChordPending:
        rid = (self.ident << 20) | next(self._rid)
        pend = ChordPending(request_id=rid, target=target)
        self.pending[rid] = pend
        pend.timeout_event = self.sim.schedule(
            self.lookup_timeout, lambda: self._timeout(rid), label=f"chord-to:{rid}"
        )
        self._handle(ChordLookup(rid, self.ident, target, 0))
        return pend

    def _timeout(self, rid: int) -> None:
        pend = self.pending.pop(rid, None)
        if pend is None:
            return
        res = LookupResult(request_id=rid, origin=self.ident, target=pend.target,
                           algo=LookupAlgorithm.GREEDY, found=False, hops=0,
                           timed_out=True)
        pend.result = res
        self.results.append(res)

    def on_datagram(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if isinstance(payload, ChordLookup):
            self._handle(payload)
        elif isinstance(payload, ChordReply):
            self._on_reply(payload)

    def _handle(self, msg: ChordLookup) -> None:
        if msg.hops > 255:
            return
        if msg.target == self.ident or self.owns(msg.target):
            # Node-lookup semantics: the lookup succeeded iff we *are* the
            # target (or hold it as an immediate successor); being merely
            # responsible for a vanished ID is a miss.
            found = msg.target == self.ident or msg.target in self.successors
            reply = ChordReply(msg.request_id, msg.target, found, msg.hops)
            if msg.origin == self.ident:
                self._on_reply(reply)
            else:
                self.send(msg.origin, reply)
            return
        nxt = self.closest_preceding(msg.target)
        if nxt is None or nxt == self.ident:
            reply = ChordReply(msg.request_id, msg.target, False, msg.hops)
            if msg.origin == self.ident:
                self._on_reply(reply)
            else:
                self.send(msg.origin, reply)
            return
        self.send(nxt, ChordLookup(msg.request_id, msg.origin, msg.target, msg.hops + 1))

    def _on_reply(self, reply: ChordReply) -> None:
        pend = self.pending.pop(reply.request_id, None)
        if pend is None:
            return
        if pend.timeout_event is not None:
            pend.timeout_event.cancel()  # type: ignore[attr-defined]
        res = LookupResult(request_id=reply.request_id, origin=self.ident,
                           target=pend.target, algo=LookupAlgorithm.GREEDY,
                           found=reply.found, hops=reply.hops)
        pend.result = res
        self.results.append(res)


class ChordNetwork:
    """A complete simulated Chord deployment (builder + failure harness)."""

    def __init__(
        self,
        m_bits: int = 32,
        seed: int = 0,
        succ_count: int = 4,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
    ) -> None:
        if not 4 <= m_bits <= 62:
            raise ValueError(f"m_bits must be in [4, 62], got {m_bits}")
        self.m_bits = m_bits
        self.ring = 1 << m_bits
        self.succ_count = succ_count
        self.rng = RngRegistry(seed)
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            latency=latency if latency is not None else UniformLatency(self.rng.get("latency")),
            loss=loss,
            rng=self.rng.get("loss"),
        )
        self.nodes: Dict[int, ChordNode] = {}
        self.ids: List[int] = []

    # ------------------------------------------------------------- building
    def build(self, n: int) -> None:
        if self.nodes:
            raise RuntimeError("network already built")
        rng = self.rng.get("ids")
        seen: set[int] = set()
        while len(seen) < n:
            for v in rng.integers(0, self.ring, size=n - len(seen) + 8):
                iv = int(v)
                if iv not in seen:
                    seen.add(iv)
                    if len(seen) == n:
                        break
        self.ids = sorted(seen)
        for i in self.ids:
            node = ChordNode(i, self.m_bits, self.succ_count)
            self.network.register(node)
            self.nodes[i] = node
        self._install_tables(self.ids)

    def _successor_of(self, sorted_ids: List[int], key: int) -> int:
        idx = bisect_left(sorted_ids, key)
        return sorted_ids[idx % len(sorted_ids)]

    def _install_tables(self, members: List[int]) -> None:
        """Converged fingers/successors for the given live membership."""
        members = sorted(members)
        n = len(members)
        for i in members:
            node = self.nodes[i]
            pos = bisect_left(members, i)
            node.predecessor = members[(pos - 1) % n]
            node.successors = [members[(pos + k + 1) % n] for k in range(min(self.succ_count, n - 1))]
            fingers = []
            for b in range(self.m_bits):
                f = self._successor_of(members, (i + (1 << b)) % self.ring)
                if f != i and (not fingers or fingers[-1] != f):
                    fingers.append(f)
            node.fingers = sorted(set(fingers))

    # ------------------------------------------------------------- failures
    def fail_nodes(self, idents: Iterable[int]) -> None:
        for i in idents:
            self.network.set_down(i)

    def repair_step(self) -> None:
        """Purge dead pointers and re-stabilise among survivors.

        Mirrors Chord's stabilisation fixed point: fingers recomputed over
        the live membership (what periodic ``fix_fingers`` converges to),
        so the baseline gets the same converged-maintenance treatment as
        TreeP's :func:`repro.core.repair.apply_failure_step`.
        """
        live = [i for i in self.ids if self.network.is_up(i)]
        if live:
            self._install_tables(live)

    def purge_only(self) -> None:
        """Weaker repair: drop dead pointers without recomputing fingers."""
        up = self.network.is_up
        for i in self.ids:
            if not up(i):
                continue
            node = self.nodes[i]
            node.fingers = [f for f in node.fingers if up(f)]
            node.successors = [s for s in node.successors if up(s)]
            if node.predecessor is not None and not up(node.predecessor):
                node.predecessor = None

    # -------------------------------------------------------------- lookups
    def run_lookup_batch(self, pairs: Iterable[Tuple[int, int]]) -> List[LookupResult]:
        pending = [self.nodes[o].issue_lookup(t) for o, t in pairs]
        self.sim.drain()
        out = []
        for p in pending:
            assert p.result is not None
            out.append(p.result)
        return out

    def alive_ids(self) -> List[int]:
        return [i for i in self.ids if self.network.is_up(i)]
