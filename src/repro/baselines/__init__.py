"""Comparator overlays on the same simulated substrate.

The paper positions TreeP against the structured-DHT family (Chord, CAN,
Pastry, …) and the unstructured flooders (Gnutella/Kazaa) in §I-II.  To make
those comparisons runnable, this package implements:

* :mod:`repro.baselines.chord` — Chord with finger tables and successor
  lists, message-driven lookups, and the same failure harness as TreeP.
* :mod:`repro.baselines.random_graph` — a degree-``k`` random overlay.
* :mod:`repro.baselines.flood` — Gnutella-style TTL-limited flooding on the
  random overlay.

All three run on :mod:`repro.sim`, so hop counts, message counts and
failure behaviour are directly comparable with TreeP's.
"""

from repro.baselines.chord import ChordNetwork
from repro.baselines.flood import FloodNetwork
from repro.baselines.random_graph import random_overlay

__all__ = ["ChordNetwork", "FloodNetwork", "random_overlay"]
