"""Random degree-``k`` overlays — the unstructured substrate.

Gnutella-class networks have no structure beyond "every peer keeps a handful
of random links"; this module builds such graphs for the flooding baseline
and for ablations that need a structure-free comparator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np


def random_overlay(
    ids: Sequence[int],
    rng: np.random.Generator,
    degree: int = 4,
) -> Dict[int, List[int]]:
    """Connected random overlay with ~``degree`` links per node.

    Construction: a random Hamiltonian backbone (guarantees connectivity,
    the standard trick in overlay simulators) plus random extra edges until
    the average degree reaches *degree*.  Returns a symmetric adjacency
    mapping.
    """
    n = len(ids)
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if degree < 2:
        raise ValueError(f"degree must be >= 2, got {degree}")
    if len(set(ids)) != n:
        raise ValueError("duplicate ids")

    adj: Dict[int, Set[int]] = {i: set() for i in ids}
    order = list(rng.permutation(list(ids)))
    for a, b in zip(order, order[1:] + order[:1]):
        a, b = int(a), int(b)
        adj[a].add(b)
        adj[b].add(a)

    target_edges = max(n, (degree * n) // 2)
    edges = n  # the cycle
    id_arr = np.array(ids)
    attempts = 0
    while edges < target_edges and attempts < 20 * target_edges:
        a, b = (int(x) for x in rng.choice(id_arr, size=2, replace=False))
        attempts += 1
        if b not in adj[a]:
            adj[a].add(b)
            adj[b].add(a)
            edges += 1
    return {i: sorted(neigh) for i, neigh in adj.items()}


def average_degree(adj: Dict[int, List[int]]) -> float:
    return float(np.mean([len(v) for v in adj.values()])) if adj else 0.0
