"""Gnutella-style TTL-limited flooding — the unstructured baseline.

The paper's §I critique of the decentralised-unstructured family: "they rely
on a blind flood lookup algorithm … techniques that do not scale well."
This baseline makes the critique measurable: lookups succeed with high
probability while the flood horizon covers the network, but message cost is
exponential in the TTL and plummeting coverage under failures.

Message-driven on the shared substrate: each node forwards an unseen query
to all neighbours except the sender, TTL decrementing per hop; the target
answers the origin directly.  Duplicate suppression by request id, exactly
as in Gnutella 0.4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.baselines.random_graph import random_overlay
from repro.core.lookup import LookupAlgorithm, LookupResult
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel, UniformLatency
from repro.sim.network import Datagram, Network, Process
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class FloodQuery:
    request_id: int
    origin: int
    target: int
    ttl: int
    hops: int = 0

    wire_size: int = 40


@dataclass(frozen=True)
class FloodHit:
    request_id: int
    target: int
    hops: int

    wire_size: int = 36


@dataclass
class FloodPending:
    request_id: int
    target: int
    timeout_event: object = None
    result: Optional[LookupResult] = None


class FloodNode(Process):
    """One unstructured peer: random neighbours, duplicate-suppressed flood."""

    def __init__(self, ident: int) -> None:
        super().__init__(ident)
        self.ident = ident
        self.neighbours: List[int] = []
        self.seen: Set[int] = set()
        self.pending: Dict[int, FloodPending] = {}
        self.results: List[LookupResult] = []
        self._rid = itertools.count(1)
        self.lookup_timeout = 30.0

    def issue_lookup(self, target: int, ttl: int = 7) -> FloodPending:
        rid = (self.ident << 20) | next(self._rid)
        pend = FloodPending(request_id=rid, target=target)
        self.pending[rid] = pend
        pend.timeout_event = self.sim.schedule(
            self.lookup_timeout, lambda: self._timeout(rid), label=f"flood-to:{rid}"
        )
        self.seen.add(rid)
        if target == self.ident:
            self._on_hit(FloodHit(rid, target, 0))
            return pend
        for n in self.neighbours:
            self.send(n, FloodQuery(rid, self.ident, target, ttl, 1))
        return pend

    def _timeout(self, rid: int) -> None:
        pend = self.pending.pop(rid, None)
        if pend is None:
            return
        res = LookupResult(request_id=rid, origin=self.ident, target=pend.target,
                           algo=LookupAlgorithm.GREEDY, found=False, hops=0,
                           timed_out=True)
        pend.result = res
        self.results.append(res)

    def on_datagram(self, dgram: Datagram) -> None:
        payload = dgram.payload
        if isinstance(payload, FloodQuery):
            self._on_query(dgram.src, payload)
        elif isinstance(payload, FloodHit):
            self._on_hit(payload)

    def _on_query(self, src: int, q: FloodQuery) -> None:
        if q.request_id in self.seen:
            return
        self.seen.add(q.request_id)
        if q.target == self.ident:
            self.send(q.origin, FloodHit(q.request_id, q.target, q.hops))
            return
        if q.ttl <= 1:
            return
        for n in self.neighbours:
            if n != src:
                self.send(n, FloodQuery(q.request_id, q.origin, q.target,
                                        q.ttl - 1, q.hops + 1))

    def _on_hit(self, hit: FloodHit) -> None:
        pend = self.pending.pop(hit.request_id, None)
        if pend is None:
            return  # duplicate hit; first answer wins
        if pend.timeout_event is not None:
            pend.timeout_event.cancel()  # type: ignore[attr-defined]
        res = LookupResult(request_id=hit.request_id, origin=self.ident,
                           target=pend.target, algo=LookupAlgorithm.GREEDY,
                           found=True, hops=hit.hops)
        pend.result = res
        self.results.append(res)


class FloodNetwork:
    """A complete unstructured deployment with the shared failure harness."""

    def __init__(
        self,
        seed: int = 0,
        degree: int = 4,
        default_ttl: int = 7,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
    ) -> None:
        self.rng = RngRegistry(seed)
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            latency=latency if latency is not None else UniformLatency(self.rng.get("latency")),
            loss=loss,
            rng=self.rng.get("loss"),
        )
        self.degree = degree
        self.default_ttl = default_ttl
        self.nodes: Dict[int, FloodNode] = {}
        self.ids: List[int] = []

    def build(self, n: int) -> None:
        if self.nodes:
            raise RuntimeError("network already built")
        rng = self.rng.get("ids")
        seen: set[int] = set()
        while len(seen) < n:
            for v in rng.integers(0, 2**32, size=n - len(seen) + 8):
                seen.add(int(v))
                if len(seen) == n:
                    break
        self.ids = sorted(seen)
        adj = random_overlay(self.ids, self.rng.get("topology"), degree=self.degree)
        for i in self.ids:
            node = FloodNode(i)
            node.neighbours = adj[i]
            self.network.register(node)
            self.nodes[i] = node

    def fail_nodes(self, idents: Iterable[int]) -> None:
        for i in idents:
            self.network.set_down(i)

    def repair_step(self) -> None:
        """Drop dead links (unstructured nets do no more than that)."""
        up = self.network.is_up
        for i in self.ids:
            if up(i):
                self.nodes[i].neighbours = [n for n in self.nodes[i].neighbours if up(n)]

    def run_lookup_batch(
        self, pairs: Iterable[Tuple[int, int]], ttl: Optional[int] = None
    ) -> List[LookupResult]:
        t = ttl if ttl is not None else self.default_ttl
        pending = [self.nodes[o].issue_lookup(tgt, t) for o, tgt in pairs]
        self.sim.drain()
        out = []
        for p in pending:
            assert p.result is not None
            out.append(p.result)
        return out

    def alive_ids(self) -> List[int]:
        return [i for i in self.ids if self.network.is_up(i)]

    def messages_sent(self) -> int:
        return self.network.stats.sent
