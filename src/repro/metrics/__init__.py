"""Measurement: series, histograms and summary statistics.

Everything the experiment drivers record flows through these containers so
benches and tests can assert on one consistent shape.
"""

from repro.metrics.durability import DurabilityTracker, ReplicationSample
from repro.metrics.histogram import HopHistogram
from repro.metrics.scheduling import SchedulingStats
from repro.metrics.series import Series
from repro.metrics.stats import LookupBatchStats, summarize_batch

__all__ = [
    "DurabilityTracker",
    "HopHistogram",
    "LookupBatchStats",
    "ReplicationSample",
    "SchedulingStats",
    "Series",
    "summarize_batch",
]
