"""Measurement: series, histograms and summary statistics.

Everything the experiment drivers record flows through these containers so
benches and tests can assert on one consistent shape.
"""

from repro.metrics.durability import DurabilityTracker, ReplicationSample
from repro.metrics.histogram import HopHistogram
from repro.metrics.scheduling import SchedulingStats
from repro.metrics.series import Series
from repro.metrics.stats import (
    LookupBatchStats,
    SampleSummary,
    bootstrap_interval,
    student_t_ppf,
    summarize_batch,
    summarize_samples,
    t_interval,
)

__all__ = [
    "DurabilityTracker",
    "HopHistogram",
    "LookupBatchStats",
    "ReplicationSample",
    "SampleSummary",
    "SchedulingStats",
    "Series",
    "bootstrap_interval",
    "student_t_ppf",
    "summarize_batch",
    "summarize_samples",
    "t_interval",
]
