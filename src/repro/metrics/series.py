"""A labelled (x, y) series — the unit every figure is made of."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass
class Series:
    """Ordered (x, y) pairs with a label.

    >>> s = Series("failed%")
    >>> s.add(0.05, 1.0); s.add(0.10, 2.5)
    >>> s.xs()
    array([0.05, 0.1 ])
    """

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        if self.points and x < self.points[-1][0]:
            raise ValueError(f"x must be non-decreasing, got {x} after {self.points[-1][0]}")
        self.points.append((float(x), float(y)))

    def xs(self) -> np.ndarray:
        return np.array([p[0] for p in self.points])

    def ys(self) -> np.ndarray:
        return np.array([p[1] for p in self.points])

    def __len__(self) -> int:
        return len(self.points)

    def y_at(self, x: float, tol: float = 1e-9) -> float:
        """Exact-x lookup (raises if absent)."""
        for px, py in self.points:
            if abs(px - x) <= tol:
                return py
        raise KeyError(f"no point at x={x}")

    def interp(self, x: float) -> float:
        """Linear interpolation inside the x-range."""
        xs, ys = self.xs(), self.ys()
        if len(xs) == 0:
            raise ValueError("empty series")
        return float(np.interp(x, xs, ys))

    def max_y(self) -> float:
        return float(np.max(self.ys()))

    def mean_y(self) -> float:
        return float(np.mean(self.ys()))

    def monotone_increasing(self, slack: float = 0.0) -> bool:
        """True when y never drops by more than *slack* between points."""
        ys = self.ys()
        return bool(np.all(np.diff(ys) >= -slack))
