"""Hop-count histograms — the z-axis of the paper's Figures F-I."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np


@dataclass
class HopHistogram:
    """Distribution of hop counts for one lookup batch.

    The paper's surfaces plot, per failure fraction, the *percentage of
    requests* resolved in each hop count (y axis 0..30, z axis 0..50%).
    """

    counts: Dict[int, int] = field(default_factory=dict)
    total: int = 0

    def add(self, hops: int) -> None:
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        self.counts[hops] = self.counts.get(hops, 0) + 1
        self.total += 1

    def add_many(self, hops: Iterable[int]) -> None:
        for h in hops:
            self.add(h)

    def percentage(self, hops: int) -> float:
        """% of requests resolved in exactly *hops* hops."""
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(hops, 0) / self.total

    def cumulative_percentage(self, hops: int) -> float:
        """% of requests resolved in <= *hops* hops."""
        if self.total == 0:
            return 0.0
        c = sum(v for k, v in self.counts.items() if k <= hops)
        return 100.0 * c / self.total

    def mode(self) -> int:
        """Hop count with the most requests (0 when empty)."""
        if not self.counts:
            return 0
        return max(self.counts, key=lambda k: (self.counts[k], -k))

    def peak_percentage(self) -> float:
        return self.percentage(self.mode()) if self.counts else 0.0

    def mean(self) -> float:
        if self.total == 0:
            return 0.0
        return sum(k * v for k, v in self.counts.items()) / self.total

    def row(self, max_hops: int = 30) -> List[float]:
        """Dense percentage row [0..max_hops] — one slice of the surface."""
        return [self.percentage(h) for h in range(max_hops + 1)]

    def as_array(self, max_hops: int = 30) -> np.ndarray:
        return np.array(self.row(max_hops))
