"""Scheduling metrics: makespan, goodput, wasted work, re-execution cost.

:class:`SchedulingStats` is the one shape every compute bench, test and
example asserts on (the scheduling analogue of
:class:`~repro.metrics.durability.DurabilityTracker`).  The counts are
scraped from ground truth — worker-side executed-work accounting plus the
client's terminal results — so the checkpointing-vs-restart comparison the
subsystem exists for is measured, not inferred:

* **useful work** — the work of every completed job, counted once;
* **executed work** — virtual compute seconds workers actually burned,
  including every doomed attempt;
* **wasted work** — their difference: re-executed prefixes, duplicate
  attempts, partial runs killed by churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class SchedulingStats:
    """Ground-truth outcome of one scheduling run."""

    submitted: int
    completed: int
    failed: int = 0
    makespan: float = 0.0
    useful_work: float = 0.0
    executed_work: float = 0.0
    reexecutions: int = 0
    checkpoints_written: int = 0
    steals: int = 0
    steal_reassignments: int = 0
    leases_expired: int = 0
    placement_hops: int = 0
    placements: int = 0
    failovers: int = 0
    mean_turnaround: float = 0.0

    @property
    def completion_rate(self) -> float:
        """Fraction of submitted jobs that completed (1.0 == all)."""
        return self.completed / self.submitted if self.submitted else 0.0

    @property
    def wasted_work(self) -> float:
        """Executed compute that produced nothing: re-run prefixes,
        duplicate attempts, partial runs killed by churn."""
        return max(0.0, self.executed_work - self.useful_work)

    @property
    def goodput(self) -> float:
        """Useful / executed work — 1.0 means nothing was ever re-run."""
        if self.executed_work <= 0:
            return 1.0 if self.completed == self.submitted else 0.0
        return min(1.0, self.useful_work / self.executed_work)

    @property
    def mean_placement_hops(self) -> float:
        """Average tree-edge traversals per matchmaking decision."""
        return self.placement_hops / self.placements if self.placements else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serialisable snapshot (benchmark artifact format)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "completion_rate": self.completion_rate,
            "makespan": self.makespan,
            "useful_work": self.useful_work,
            "executed_work": self.executed_work,
            "wasted_work": self.wasted_work,
            "goodput": self.goodput,
            "reexecutions": self.reexecutions,
            "checkpoints_written": self.checkpoints_written,
            "steals": self.steals,
            "steal_reassignments": self.steal_reassignments,
            "leases_expired": self.leases_expired,
            "mean_placement_hops": self.mean_placement_hops,
            "failovers": self.failovers,
            "mean_turnaround": self.mean_turnaround,
        }

    def summary_rows(self) -> List[List[str]]:
        """Rows for :func:`repro.viz.ascii.table`."""
        return [
            ["jobs completed", f"{self.completed}/{self.submitted}"],
            ["makespan (virtual s)", f"{self.makespan:.1f}"],
            ["useful work (s)", f"{self.useful_work:.1f}"],
            ["executed work (s)", f"{self.executed_work:.1f}"],
            ["wasted work (s)", f"{self.wasted_work:.1f}"],
            ["goodput", f"{self.goodput:.3f}"],
            ["re-executions", str(self.reexecutions)],
            ["checkpoints written", str(self.checkpoints_written)],
            ["jobs stolen", str(self.steals)],
            ["leases expired", str(self.leases_expired)],
            ["mean placement hops", f"{self.mean_placement_hops:.2f}"],
            ["scheduler failovers", str(self.failovers)],
            ["mean turnaround (s)", f"{self.mean_turnaround:.1f}"],
        ]
