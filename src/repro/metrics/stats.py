"""Per-batch summary statistics over lookup results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.lookup import LookupResult
from repro.metrics.histogram import HopHistogram


@dataclass(frozen=True)
class LookupBatchStats:
    """Everything the figures need from one batch at one failure level.

    ``failed_hops_max`` / ``failed_hops_min`` cover *failed* lookups only —
    the quantity of Figure E; failed hop counts come from NotFound replies
    and, for black-holed/timed-out requests, from the harness's request
    trail (measurement infrastructure, not protocol knowledge).
    """

    issued: int
    found: int
    failed: int
    timed_out: int
    failure_rate: float
    hops_mean: float
    hops_histogram: HopHistogram
    failed_hops_max: int
    failed_hops_min: int

    @property
    def success_rate(self) -> float:
        return 1.0 - self.failure_rate


def summarize_batch(
    results: Sequence[LookupResult],
    failed_hop_counts: Optional[Iterable[int]] = None,
) -> LookupBatchStats:
    """Fold a batch of :class:`LookupResult` into :class:`LookupBatchStats`.

    Parameters
    ----------
    results:
        Origin-side outcomes.
    failed_hop_counts:
        Optional hop counts for the failed lookups (from the request
        trails); defaults to the hops recorded in NotFound replies.
    """
    if not results:
        raise ValueError("empty batch")
    found = [r for r in results if r.found]
    failed = [r for r in results if not r.found]
    hist = HopHistogram()
    hist.add_many(r.hops for r in found)

    if failed_hop_counts is not None:
        fh = [int(h) for h in failed_hop_counts]
    else:
        fh = [r.hops for r in failed if not r.timed_out]

    return LookupBatchStats(
        issued=len(results),
        found=len(found),
        failed=len(failed),
        timed_out=sum(1 for r in failed if r.timed_out),
        failure_rate=len(failed) / len(results),
        hops_mean=float(np.mean([r.hops for r in found])) if found else 0.0,
        hops_histogram=hist,
        failed_hops_max=max(fh) if fh else 0,
        failed_hops_min=min(fh) if fh else 0,
    )
