"""Summary statistics: per-batch lookup folds and cross-seed intervals.

Two families live here:

* :func:`summarize_batch` / :class:`LookupBatchStats` — the per-batch
  folds the figure experiments consume;
* :func:`t_interval` / :func:`bootstrap_interval` /
  :func:`summarize_samples` — confidence intervals over repeated
  measurements (one value per seed), the math behind
  ``python -m repro.bench campaign`` aggregation.  The Student-t
  quantile is computed in-repo (regularised incomplete beta + bisection,
  no SciPy dependency) and pinned against closed-form table values in
  ``tests/test_metrics_stats.py``; the bootstrap path draws from a
  dedicated seeded generator so aggregation is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.lookup import LookupResult
from repro.metrics.histogram import HopHistogram


@dataclass(frozen=True)
class LookupBatchStats:
    """Everything the figures need from one batch at one failure level.

    ``failed_hops_max`` / ``failed_hops_min`` cover *failed* lookups only —
    the quantity of Figure E; failed hop counts come from NotFound replies
    and, for black-holed/timed-out requests, from the harness's request
    trail (measurement infrastructure, not protocol knowledge).
    """

    issued: int
    found: int
    failed: int
    timed_out: int
    failure_rate: float
    hops_mean: float
    hops_histogram: HopHistogram
    failed_hops_max: int
    failed_hops_min: int

    @property
    def success_rate(self) -> float:
        return 1.0 - self.failure_rate


def summarize_batch(
    results: Sequence[LookupResult],
    failed_hop_counts: Optional[Iterable[int]] = None,
) -> LookupBatchStats:
    """Fold a batch of :class:`LookupResult` into :class:`LookupBatchStats`.

    Parameters
    ----------
    results:
        Origin-side outcomes.
    failed_hop_counts:
        Optional hop counts for the failed lookups (from the request
        trails); defaults to the hops recorded in NotFound replies.
    """
    if not results:
        raise ValueError("empty batch")
    found = [r for r in results if r.found]
    failed = [r for r in results if not r.found]
    hist = HopHistogram()
    hist.add_many(r.hops for r in found)

    if failed_hop_counts is not None:
        fh = [int(h) for h in failed_hop_counts]
    else:
        fh = [r.hops for r in failed if not r.timed_out]

    return LookupBatchStats(
        issued=len(results),
        found=len(found),
        failed=len(failed),
        timed_out=sum(1 for r in failed if r.timed_out),
        failure_rate=len(failed) / len(results),
        hops_mean=float(np.mean([r.hops for r in found])) if found else 0.0,
        hops_histogram=hist,
        failed_hops_max=max(fh) if fh else 0,
        failed_hops_min=min(fh) if fh else 0,
    )


# ---------------------------------------------------------------------------
# Confidence intervals over repeated measurements (one sample per seed).
# ---------------------------------------------------------------------------

#: CI methods :func:`summarize_samples` accepts.
CI_METHODS = ("t", "bootstrap")


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularised incomplete beta (modified
    Lentz); standard Numerical-Recipes form, converges in ~10 iterations
    for every (a, b) a t-distribution produces."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta function ``I_x(a, b)``."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t with *df* degrees of freedom."""
    if df <= 0:
        raise ValueError(f"df must be positive, got {df}")
    if t == 0.0:
        return 0.5
    if df > 1e7:  # numerically normal; the beta CF loses precision here
        return 0.5 * (1.0 + math.erf(t / math.sqrt(2.0)))
    tail = 0.5 * _betainc(df / 2.0, 0.5, df / (df + t * t))
    return 1.0 - tail if t > 0 else tail


def student_t_ppf(p: float, df: float) -> float:
    """Quantile (inverse CDF) of Student's t — ``scipy.stats.t.ppf``
    without the SciPy dependency.  Bisection on :func:`student_t_cdf`;
    accurate to ~1e-10, pinned against table values in the tests."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if df <= 0:
        raise ValueError(f"df must be positive, got {df}")
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -student_t_ppf(1.0 - p, df)
    lo, hi = 0.0, 1.0
    while student_t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover — p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def _mean_std(xs: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (ddof=1) standard deviation; std is 0.0 at n=1."""
    n = len(xs)
    mean = math.fsum(xs) / n
    if n < 2:
        return mean, 0.0
    var = math.fsum((x - mean) ** 2 for x in xs) / (n - 1)
    return mean, math.sqrt(var)


def t_interval(samples: Sequence[float], confidence: float = 0.95,
               ) -> Optional[Tuple[float, float]]:
    """Student-t confidence interval for the mean of *samples*.

    Returns ``None`` when ``n == 1`` (one observation carries no spread
    information — there is no honest interval) and a zero-width interval
    at the mean when the sample variance is exactly zero.
    """
    xs = [float(v) for v in samples]
    if not xs:
        raise ValueError("t_interval needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if len(xs) == 1:
        return None
    mean, std = _mean_std(xs)
    if std == 0.0:
        return (mean, mean)
    half = student_t_ppf(0.5 + confidence / 2.0, len(xs) - 1) \
        * std / math.sqrt(len(xs))
    return (mean - half, mean + half)


def bootstrap_interval(samples: Sequence[float], confidence: float = 0.95,
                       resamples: int = 2000, seed: int = 0,
                       ) -> Optional[Tuple[float, float]]:
    """Percentile-bootstrap confidence interval for the mean.

    Resampling draws from a dedicated ``default_rng(seed)`` so repeated
    aggregation of the same samples is bit-identical.  Same degenerate
    contract as :func:`t_interval`: ``None`` at n=1, zero width at zero
    variance.
    """
    xs = [float(v) for v in samples]
    if not xs:
        raise ValueError("bootstrap_interval needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    if len(xs) == 1:
        return None
    arr = np.asarray(xs, dtype=float)
    if float(np.ptp(arr)) == 0.0:
        mean = float(arr[0])
        return (mean, mean)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(arr), size=(resamples, len(arr)))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return (float(lo), float(hi))


@dataclass(frozen=True)
class SampleSummary:
    """Mean/spread/interval of one metric across repetitions (seeds)."""

    n: int
    mean: float
    std: float                      # sample std (ddof=1); 0.0 at n=1
    ci_lo: Optional[float]          # None when n == 1 (no interval)
    ci_hi: Optional[float]
    confidence: float = 0.95
    method: str = "t"

    @property
    def half_width(self) -> Optional[float]:
        if self.ci_lo is None or self.ci_hi is None:
            return None
        return 0.5 * (self.ci_hi - self.ci_lo)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "ci_lo": self.ci_lo,
            "ci_hi": self.ci_hi,
            "confidence": self.confidence,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SampleSummary":
        return cls(
            n=int(data["n"]),
            mean=float(data["mean"]),
            std=float(data["std"]),
            ci_lo=None if data.get("ci_lo") is None else float(data["ci_lo"]),
            ci_hi=None if data.get("ci_hi") is None else float(data["ci_hi"]),
            confidence=float(data.get("confidence", 0.95)),
            method=str(data.get("method", "t")),
        )


def summarize_samples(samples: Sequence[float], confidence: float = 0.95,
                      method: str = "t", resamples: int = 2000,
                      seed: int = 0) -> SampleSummary:
    """Fold repeated measurements into a :class:`SampleSummary`."""
    if method not in CI_METHODS:
        raise ValueError(
            f"unknown CI method {method!r} (known: {CI_METHODS})")
    xs = [float(v) for v in samples]
    if not xs:
        raise ValueError("summarize_samples needs at least one sample")
    mean, std = _mean_std(xs)
    if method == "t":
        ci = t_interval(xs, confidence)
    else:
        ci = bootstrap_interval(xs, confidence, resamples=resamples,
                                seed=seed)
    lo, hi = (None, None) if ci is None else ci
    return SampleSummary(n=len(xs), mean=mean, std=std, ci_lo=lo, ci_hi=hi,
                         confidence=confidence, method=method)
