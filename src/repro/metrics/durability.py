"""Replication-health and durability time-series.

The anti-entropy sweep records one :class:`ReplicationSample` per pass;
:class:`DurabilityTracker` accumulates them as :class:`~repro.metrics.series.Series`
so benches and tests assert on the same shapes the figure pipeline uses
(min/mean replication factor over time, keys lost, under-replicated count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.series import Series


@dataclass(frozen=True)
class ReplicationSample:
    """Replication health of the whole store at one instant."""

    time: float
    keys: int
    min_rf: int
    mean_rf: float
    under_replicated: int
    lost: int

    @property
    def durable(self) -> bool:
        """No tracked key has lost its last live replica."""
        return self.lost == 0


@dataclass
class DurabilityTracker:
    """Accumulates replication-health samples into labelled series."""

    n_target: int
    min_rf: Series = field(default_factory=lambda: Series("min replication factor"))
    mean_rf: Series = field(default_factory=lambda: Series("mean replication factor"))
    under_replicated: Series = field(default_factory=lambda: Series("under-replicated keys"))
    lost: Series = field(default_factory=lambda: Series("lost keys"))
    samples: List[ReplicationSample] = field(default_factory=list)

    def record(
        self, time: float, rf_by_key: Dict[int, int], lost: int = 0
    ) -> ReplicationSample:
        """Fold one snapshot of per-key live replica counts into the series.

        *rf_by_key* maps key id → live replicas; keys at zero may instead be
        passed via *lost* when the caller has already separated them out.
        """
        counts = list(rf_by_key.values())
        zero = sum(1 for c in counts if c == 0)
        present = [c for c in counts if c > 0]
        sample = ReplicationSample(
            time=time,
            keys=len(counts),
            min_rf=min(present) if present else 0,
            mean_rf=sum(present) / len(present) if present else 0.0,
            under_replicated=sum(1 for c in present if c < self.n_target),
            lost=lost + zero,
        )
        self.samples.append(sample)
        self.min_rf.add(time, sample.min_rf)
        self.mean_rf.add(time, sample.mean_rf)
        self.under_replicated.add(time, sample.under_replicated)
        self.lost.add(time, sample.lost)
        return sample

    @property
    def always_durable(self) -> bool:
        """True when no sample ever observed a lost key."""
        return all(s.lost == 0 for s in self.samples)

    def latest(self) -> ReplicationSample:
        if not self.samples:
            raise ValueError("no samples recorded")
        return self.samples[-1]
