"""The machine-readable layer map and its docstring cross-validation.

``layers.toml`` (shipped next to this module) is the single source of
truth the RPR2xx rules enforce.  It is *generated from* the prose
owns/may-import layer contracts in the ``__init__.py`` docstrings of
``cluster``/``storage``/``compute``/``bench``/``obs``/``core`` — and
:func:`contract_drift` cross-validates the two, so the map and the prose
cannot drift apart (``tests/test_lint_repo.py`` pins this, and RPR202
re-checks it on every lint run).

Python < 3.11 has no :mod:`tomllib`; :func:`parse_toml` falls back to a
minimal parser covering exactly the subset ``layers.toml`` uses (tables
with optionally quoted segments, string values, single- or multi-line
string arrays, comments).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, List, Mapping, Optional, Tuple

__all__ = [
    "Contract",
    "LayerMap",
    "LayerPolicy",
    "contract_drift",
    "default_layers_path",
    "load_layer_map",
    "parse_contract",
    "parse_toml",
]


# ------------------------------------------------------------ toml loading
def default_layers_path() -> Path:
    return Path(__file__).resolve().parent / "layers.toml"


def parse_toml(text: str) -> dict:
    try:
        import tomllib
    except ModuleNotFoundError:  # Python < 3.11
        return _parse_toml_fallback(text)
    return tomllib.loads(text)


_SEG_RE = re.compile(r'"([^"]*)"|([A-Za-z0-9_-]+)')


def _table_path(header: str) -> List[str]:
    """Split ``package.core`` / ``overrides."repro/obs/cli.py"`` into segments."""
    out: List[str] = []
    pos = 0
    while pos < len(header):
        if header[pos] == ".":
            pos += 1
            continue
        m = _SEG_RE.match(header, pos)
        if m is None:
            raise ValueError(f"bad table header: [{header}]")
        out.append(m.group(1) if m.group(1) is not None else m.group(2))
        pos = m.end()
    return out


def _strip_comment(line: str) -> str:
    out = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        if ch == "#" and not in_str:
            break
        out.append(ch)
    return "".join(out).strip()


def _parse_value(raw: str):
    raw = raw.strip()
    if raw.startswith("["):
        inner = raw[1:-1]
        items = [s.strip() for s in inner.split(",")]
        return [_parse_value(s) for s in items if s]
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    raise ValueError(f"unsupported TOML value: {raw!r}")


def _parse_toml_fallback(text: str) -> dict:
    root: dict = {}
    table = root
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip_comment(lines[i])
        i += 1
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for seg in _table_path(line[1:-1]):
                table = table.setdefault(seg, {})
            continue
        if "=" not in line:
            raise ValueError(f"unparseable TOML line: {line!r}")
        key, _, raw = line.partition("=")
        raw = raw.strip()
        # multi-line array: accumulate until brackets balance
        while raw.count("[") > raw.count("]"):
            if i >= len(lines):
                raise ValueError("unterminated TOML array")
            raw += " " + _strip_comment(lines[i])
            i += 1
        key = key.strip().strip('"')
        table[key] = _parse_value(raw)
    return root


# -------------------------------------------------------------- the layer map
@dataclass(frozen=True)
class LayerPolicy:
    """Import permissions for one top-level package under ``repro``."""

    may_import: FrozenSet[str] = frozenset()
    #: additionally allowed only from function/branch scope (lazy imports)
    lazy: FrozenSet[str] = frozenset()
    #: package -> allowed module prefixes, e.g. core may reach ``obs`` only
    #: through ``repro.obs.runtime`` (the ambient-hook entry point)
    via: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def reachable(self) -> FrozenSet[str]:
        return self.may_import | self.lazy


@dataclass(frozen=True)
class LayerMap:
    packages: Mapping[str, LayerPolicy]
    #: package -> exhaustive set of packages allowed to import it
    #: (only packages with a declared *imported-by* restriction appear)
    consumers: Mapping[str, FrozenSet[str]]
    #: module relpath (under ``src/``) -> replacement policy
    overrides: Mapping[str, LayerPolicy]
    #: rule-scope configuration blocks ([determinism], [slots], …)
    config: Mapping[str, dict] = field(default_factory=dict)

    def policy_for(self, relpath: str, package: str) -> Optional[LayerPolicy]:
        """Override (exact module path under src/) wins over the package."""
        key = relpath[len("src/"):] if relpath.startswith("src/") else relpath
        override = self.overrides.get(key)
        if override is not None:
            return override
        return self.packages.get(package)

    def actual_consumers(self, package: str) -> FrozenSet[str]:
        """Packages whose policy (or module override) may import ``package``."""
        out = set()
        for name, pol in self.packages.items():
            if package in pol.reachable and name != package:
                out.add(name)
        for relpath, pol in self.overrides.items():
            if package in pol.reachable:
                owner = relpath.split("/")[1] if "/" in relpath else relpath
                if owner != package:
                    out.add(owner)
        return frozenset(out)


def _policy_from(table: dict, where: str) -> LayerPolicy:
    known = {"may_import", "lazy", "via"}
    extra = set(table) - known
    if extra:
        raise ValueError(f"{where}: unknown key(s) {sorted(extra)}")
    via = {
        pkg: tuple(mods) for pkg, mods in (table.get("via") or {}).items()
    }
    return LayerPolicy(
        may_import=frozenset(table.get("may_import", ())),
        lazy=frozenset(table.get("lazy", ())),
        via=via,
    )


def load_layer_map(path: Optional[Path] = None) -> LayerMap:
    path = path or default_layers_path()
    data = parse_toml(path.read_text())
    packages = {
        name: _policy_from(tbl, f"[package.{name}]")
        for name, tbl in (data.get("package") or {}).items()
    }
    consumers = {
        name: frozenset(vals)
        for name, vals in (data.get("consumers") or {}).items()
    }
    overrides = {
        rel: _policy_from(tbl, f'[overrides."{rel}"]')
        for rel, tbl in (data.get("overrides") or {}).items()
    }
    config = {
        key: tbl
        for key, tbl in data.items()
        if key not in ("package", "consumers", "overrides")
    }
    # internal consistency: every package named anywhere must have a policy
    names = set(packages)
    for name, pol in packages.items():
        unknown = (pol.reachable | set(pol.via)) - names
        if unknown:
            raise ValueError(
                f"[package.{name}] references unmapped package(s): {sorted(unknown)}"
            )
    for name, allowed in consumers.items():
        unknown = ({name} | allowed) - names
        if unknown:
            raise ValueError(
                f"[consumers] references unmapped package(s): {sorted(unknown)}"
            )
    return LayerMap(
        packages=packages, consumers=consumers, overrides=overrides, config=config
    )


# ----------------------------------------------- docstring layer contracts
@dataclass(frozen=True)
class Contract:
    """The machine-readable reading of one prose layer contract."""

    allow: FrozenSet[str] = frozenset()
    lazy: FrozenSet[str] = frozenset()
    deny: FrozenSet[str] = frozenset()
    #: None = no imported-by restriction declared
    consumers: Optional[FrozenSet[str]] = None

    @property
    def empty(self) -> bool:
        return not (self.allow or self.lazy or self.deny) and self.consumers is None


_CONTRACT_MARK = re.compile(r"Layer(?:ing)? contract:", re.IGNORECASE)
_REF_RE = re.compile(r"``([A-Za-z0-9_.]+)``")
_DENY_RE = re.compile(r"must not import|must never import|never imports?\b")


def _refs(fragment: str, known) -> FrozenSet[str]:
    out = set()
    for tok in _REF_RE.findall(fragment):
        name = tok.split(".")[1] if tok.startswith("repro.") else tok
        if tok == "repro":
            name = "repro"
        if name in known:
            out.add(name)
    return frozenset(out)


def parse_contract(doc: Optional[str], known) -> Contract:
    """Extract the layer contract from an ``__init__`` docstring.

    Grammar (validated by tests against every contract in the tree): the
    text from ``Layer contract:`` / ``Layering contract:`` onwards is
    split into fragments at ``;`` and sentence ends; each fragment is
    classified by keyword — *deny* (``must not import`` …), *imported-by*
    (``nothing … imports``, allowed consumers listed after ``except``),
    *lazy allow* (``lazily import``), or *allow* (``may import`` /
    ``import only``).  Package references are the ````repro.X````
    double-backtick tokens; anything that is not a known package name is
    prose and ignored.
    """
    if not doc:
        return Contract()
    m = _CONTRACT_MARK.search(doc)
    if m is None:
        return Contract()
    text = " ".join(doc[m.end():].split())
    allow: set = set()
    lazy: set = set()
    deny: set = set()
    consumers: Optional[set] = None
    for fragment in re.split(r";|\.\s|\.$", text):
        if not fragment.strip():
            continue
        if _DENY_RE.search(fragment):
            deny |= _refs(fragment, known)
        elif "nothing" in fragment and re.search(r"\bimports?\b", fragment):
            consumers = set() if consumers is None else consumers
            _, sep, tail = fragment.partition("except")
            if sep:
                consumers |= _refs(tail, known | {"repro"})
        elif "lazi" in fragment and "import" in fragment:
            lazy |= _refs(fragment, known)
        elif re.search(r"may import|imports? only", fragment):
            allow |= _refs(fragment, known)
    return Contract(
        allow=frozenset(allow),
        lazy=frozenset(lazy),
        deny=frozenset(deny),
        consumers=frozenset(consumers) if consumers is not None else None,
    )


def contract_drift(layer_map: LayerMap, package: str, contract: Contract) -> List[str]:
    """Human-readable mismatches between a prose contract and the map."""
    drift: List[str] = []
    pol = layer_map.packages.get(package)
    if pol is None:
        return [f"package {package!r} declares a layer contract but has no "
                f"[package.{package}] entry in layers.toml"]
    for t in sorted(contract.allow - pol.may_import):
        drift.append(
            f"docstring says {package} may import {t}, but layers.toml "
            f"[package.{package}] may_import does not list it"
        )
    for t in sorted(contract.lazy - pol.reachable):
        drift.append(
            f"docstring says {package} lazily imports {t}, but layers.toml "
            f"[package.{package}] does not allow it"
        )
    for t in sorted(contract.deny & pol.reachable):
        drift.append(
            f"docstring forbids {package} -> {t}, but layers.toml "
            f"[package.{package}] allows it"
        )
    if contract.consumers is not None:
        declared = contract.consumers
        mapped = layer_map.consumers.get(package)
        if mapped is None:
            drift.append(
                f"docstring restricts who imports {package}, but layers.toml "
                f"has no [consumers] entry for it"
            )
        else:
            for q in sorted(declared ^ mapped):
                drift.append(
                    f"imported-by contract for {package} disagrees on {q!r}: "
                    f"docstring={sorted(declared)}, layers.toml={sorted(mapped)}"
                )
        actual = layer_map.actual_consumers(package)
        for q in sorted(actual - declared):
            drift.append(
                f"{q} may import {package} per layers.toml, but the "
                f"{package} docstring does not list it as a consumer"
            )
    return drift
