"""Core of the ``repro.lint`` analyzer.

One :class:`FileContext` per file — a single ``ast.parse`` and a single
``tokenize`` pass shared by every rule — plus the suppression protocol,
the baseline store and the :class:`LintEngine` driver.

The analyzer is deliberately **stdlib-only and self-contained**: it never
imports the code it analyzes, so a layering bug in ``src/repro`` can never
take the linter down with it.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

__all__ = [
    "FileContext",
    "LintEngine",
    "LintReport",
    "ProjectContext",
    "Suppression",
    "Violation",
    "load_baseline",
    "write_baseline",
]

# Engine-owned diagnostics (not in the rule registry: they guard the
# analysis protocol itself and cannot be disabled).
PARSE_ERROR = "RPR000"
BARE_SUPPRESSION = "RPR001"


# --------------------------------------------------------------- violations
@dataclass(frozen=True)
class Violation:
    """One finding: a stable rule code anchored at a source location."""

    code: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline store.

        Excluding the line number keeps recorded violations pinned to
        *what* is wrong rather than *where*, so unrelated edits above a
        baselined site do not resurface it.
        """
        return f"{self.code}::{self.path}::{self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)


# ------------------------------------------------------------- suppressions
#: ``# repro-lint: disable=RPR101[,RPR402] <justification>`` — the
#: justification is *required*; a bare disable earns RPR001 and the
#: original violation still stands.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z0-9, ]+?)(?:\s+(\S.*?))?\s*$"
)


@dataclass
class Suppression:
    line: int
    codes: frozenset
    justification: str
    used: bool = False


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Map line number -> suppression, via a real tokenizer pass.

    Using :mod:`tokenize` (not a per-line regex) means a string literal
    that *contains* ``# repro-lint:`` can never create a phantom
    suppression.
    """
    out: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m is None:
                continue
            codes = frozenset(
                c.strip() for c in m.group(1).split(",") if c.strip()
            )
            out[tok.start[0]] = Suppression(
                line=tok.start[0],
                codes=codes,
                justification=(m.group(2) or "").strip(),
            )
    except tokenize.TokenError:
        pass  # the parse error is reported as RPR000 by the engine
    return out


# ------------------------------------------------------------ file context
class FileContext:
    """Everything a rule may ask about one source file (parsed once)."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        #: posix path relative to the project root, e.g. ``src/repro/core/node.py``
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = parse_suppressions(source)
        self.module, self.package, self.is_package = _module_of(relpath)

    # convenience for rules -------------------------------------------------
    def violation(self, code: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            code=code,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _module_of(relpath: str):
    """``src/repro/core/node.py`` -> (``repro.core.node``, ``core``, False).

    Files outside ``src/`` have no module identity (package rules skip
    them); the package of ``src/repro/__init__.py`` itself is ``repro``.
    """
    parts = Path(relpath).parts
    if len(parts) < 2 or parts[0] != "src" or not relpath.endswith(".py"):
        return None, None, False
    mod_parts = list(parts[1:])
    is_package = mod_parts[-1] == "__init__.py"
    if is_package:
        mod_parts = mod_parts[:-1]
    else:
        mod_parts[-1] = mod_parts[-1][: -len(".py")]
    module = ".".join(mod_parts)
    if not module.startswith("repro"):
        return None, None, False
    dotted = module.split(".")
    # A plain module directly under src/repro/ (rare) belongs to the root
    # package; subpackage membership comes from the first path segment.
    if len(dotted) >= 3 or (len(dotted) == 2 and is_package):
        package = dotted[1]
    else:
        package = "repro"
    return module, package, is_package


# --------------------------------------------------------- project context
@dataclass
class ProjectContext:
    """Shared, immutable-per-run state handed to every rule."""

    root: Path
    layers: Optional["LayerMap"] = None  # noqa: F821 - see repro.lint.layers


# ----------------------------------------------------------------- baseline
def load_baseline(path: Path) -> Dict[str, int]:
    """Fingerprint -> budget counter recorded by ``--update-baseline``."""
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("version") != 1:
        raise ValueError(f"{path}: not a repro.lint baseline (version 1)")
    fps = data.get("fingerprints", {})
    if not isinstance(fps, dict):
        raise ValueError(f"{path}: malformed 'fingerprints' table")
    return {str(k): int(v) for k, v in fps.items()}


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    counts: Dict[str, int] = {}
    for v in violations:
        counts[v.fingerprint] = counts.get(v.fingerprint, 0) + 1
    payload = {"version": 1, "fingerprints": dict(sorted(counts.items()))}
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ------------------------------------------------------------------- report
@dataclass
class LintReport:
    violations: List[Violation] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations


# ------------------------------------------------------------------- engine
RuleFn = Callable[[FileContext, ProjectContext], Iterator[Violation]]


class LintEngine:
    """Walk files, run rules, apply suppressions and the baseline."""

    def __init__(
        self,
        root: Path,
        rules: Mapping[str, RuleFn],
        layers: Optional["LayerMap"] = None,  # noqa: F821
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        self.root = Path(root)
        self.project = ProjectContext(root=self.root, layers=layers)
        enabled = dict(rules)
        if select is not None:
            wanted = set(select)
            unknown = wanted - set(rules)
            if unknown:
                raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
            enabled = {c: r for c, r in enabled.items() if c in wanted}
        if ignore is not None:
            unknown = set(ignore) - set(rules)
            if unknown:
                raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
            enabled = {c: r for c, r in enabled.items() if c not in set(ignore)}
        self.rules = enabled

    # ----------------------------------------------------------- discovery
    def iter_files(self, paths: Sequence[Path]) -> Iterator[Path]:
        seen = set()
        for p in paths:
            p = Path(p)
            if not p.is_absolute():
                p = self.root / p
            candidates = [p] if p.is_file() else sorted(p.rglob("*.py"))
            for f in candidates:
                if "__pycache__" in f.parts or f.suffix != ".py":
                    continue
                if f not in seen:
                    seen.add(f)
                    yield f

    # ------------------------------------------------------------- linting
    def lint_file(self, path: Path, report: LintReport) -> List[Violation]:
        relpath = path.relative_to(self.root).as_posix() if path.is_relative_to(
            self.root
        ) else path.as_posix()
        source = path.read_text()
        try:
            ctx = FileContext(path, relpath, source)
        except SyntaxError as exc:
            return [
                Violation(
                    PARSE_ERROR, relpath, exc.lineno or 1, (exc.offset or 0) + 1,
                    f"file does not parse: {exc.msg}",
                )
            ]
        raw: List[Violation] = []
        for fn in self.rules.values():
            raw.extend(fn(ctx, self.project))

        kept: List[Violation] = []
        flagged_bare: set = set()
        for v in sorted(raw, key=Violation.sort_key):
            sup = ctx.suppressions.get(v.line)
            if sup is not None and v.code in sup.codes:
                sup.used = True
                if sup.justification:
                    report.suppressed += 1
                    continue
                if sup.line not in flagged_bare:
                    flagged_bare.add(sup.line)
                    kept.append(
                        Violation(
                            BARE_SUPPRESSION, relpath, sup.line, 1,
                            "suppression without justification: say *why* "
                            "the invariant does not apply here",
                        )
                    )
                # the original violation still stands
            kept.append(v)
        return kept

    def run(self, paths: Sequence[Path], baseline: Optional[Dict[str, int]] = None) -> LintReport:
        report = LintReport()
        budget = dict(baseline) if baseline else {}
        for path in self.iter_files(paths):
            report.files += 1
            for v in self.lint_file(path, report):
                if budget.get(v.fingerprint, 0) > 0:
                    budget[v.fingerprint] -= 1
                    report.baselined += 1
                    continue
                report.violations.append(v)
        report.violations.sort(key=Violation.sort_key)
        return report


# ------------------------------------------------------------------ helpers
def walk_with_depth(tree: ast.AST) -> Iterator[tuple]:
    """Yield ``(node, depth)`` where depth 0 means module top level.

    Depth increases when entering any statement body, so import statements
    at depth > 0 are *lazy* (function/method/branch scope) — the
    distinction the layer map cares about.
    """
    stack = [(tree, -1)]
    while stack:
        node, depth = stack.pop()
        if depth >= 0:
            yield node, depth
        for child in ast.iter_child_nodes(node):
            stack.append((child, depth + 1))
