"""``python -m repro.lint`` — the invariant analyzer's command line.

Exit codes: 0 clean (or everything baselined/suppressed), 1 violations,
2 usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import LintEngine, LintReport, load_baseline, write_baseline
from repro.lint.layers import default_layers_path, load_layer_map
from repro.lint.rules import all_rules

FORMATS = ("text", "json", "github")


def find_project_root(start: Optional[Path] = None) -> Path:
    """Nearest ancestor with a pyproject.toml (falls back to the tree
    this module was installed from, so the CLI works from any cwd)."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    packaged = Path(__file__).resolve().parents[3]
    return packaged


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant analyzer: determinism (RPR1xx), "
        "layer contracts (RPR2xx), lifecycle hygiene (RPR3xx), "
        "perf/obs hygiene (RPR4xx).",
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    p.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="output format (github emits workflow annotations)",
    )
    p.add_argument(
        "--baseline", metavar="FILE", type=Path,
        help="gate only on violations not recorded in FILE",
    )
    p.add_argument(
        "--update-baseline", action="store_true",
        help="record the current violations into --baseline FILE and exit 0",
    )
    p.add_argument(
        "--layers", metavar="FILE", type=Path,
        help=f"layer map (default: {default_layers_path().name} shipped "
        f"with repro.lint)",
    )
    p.add_argument(
        "--project-root", metavar="DIR", type=Path,
        help="repo root for relative paths (default: nearest pyproject.toml)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return p


def _codes(arg: Optional[str]) -> Optional[List[str]]:
    if arg is None:
        return None
    return [c.strip() for c in arg.split(",") if c.strip()]


def render(report: LintReport, fmt: str, stream) -> None:
    if fmt == "json":
        payload = {
            "violations": [
                {
                    "code": v.code, "path": v.path, "line": v.line,
                    "col": v.col, "message": v.message,
                }
                for v in report.violations
            ],
            "summary": {
                "files": report.files,
                "violations": len(report.violations),
                "suppressed": report.suppressed,
                "baselined": report.baselined,
            },
        }
        json.dump(payload, stream, indent=2)
        stream.write("\n")
        return
    for v in report.violations:
        if fmt == "github":
            stream.write(
                f"::error file={v.path},line={v.line},col={v.col},"
                f"title={v.code}::{v.message}\n"
            )
        else:
            stream.write(f"{v.path}:{v.line}:{v.col} {v.code} {v.message}\n")
    if fmt == "text":
        tail = []
        if report.suppressed:
            tail.append(f"{report.suppressed} suppressed")
        if report.baselined:
            tail.append(f"{report.baselined} baselined")
        extra = f" ({', '.join(tail)})" if tail else ""
        stream.write(
            f"{len(report.violations)} violation(s) in {report.files} "
            f"file(s){extra}\n"
        )


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    stream = stream or sys.stdout
    args = build_parser().parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for code in sorted(rules):
            r = rules[code]
            stream.write(f"{code}  {r.name}: {r.summary}\n")
        return 0
    try:
        root = (args.project_root or find_project_root()).resolve()
        layers = load_layer_map(args.layers)
        engine = LintEngine(
            root=root,
            rules={c: r.check for c, r in rules.items()},
            layers=layers,
            select=_codes(args.select),
            ignore=_codes(args.ignore),
        )
    except (KeyError, ValueError, OSError) as exc:
        sys.stderr.write(f"repro.lint: {exc}\n")
        return 2
    if args.update_baseline:
        if args.baseline is None:
            sys.stderr.write("repro.lint: --update-baseline requires --baseline FILE\n")
            return 2
        report = engine.run(args.paths)
        write_baseline(args.baseline, report.violations)
        stream.write(
            f"baseline: recorded {len(report.violations)} violation(s) "
            f"to {args.baseline}\n"
        )
        return 0
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            sys.stderr.write(f"repro.lint: cannot read baseline: {exc}\n")
            return 2
    try:
        report = engine.run(args.paths, baseline=baseline)
    except (OSError, ValueError) as exc:
        sys.stderr.write(f"repro.lint: {exc}\n")
        return 2
    render(report, args.fmt, stream)
    return 0 if report.clean else 1
