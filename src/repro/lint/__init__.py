"""``repro.lint`` — the AST-based invariant analyzer (``python -m repro.lint``).

The reproduction's correctness rests on invariants the test suite can only
spot-check: fixed-seed determinism (PR 5's bit-identical-metrics
discipline), RNG/schedule-neutral observability (PR 6/7's nil-guarded
instrumentation), registry-owned handler/timer cleanup (PR 3),
``__slots__`` on hot-path records (PR 5) and the owns/may-import layer
contracts in the package ``__init__`` docstrings.  This package turns each
of those into a machine-checked rule with a stable code:

========  ==============================================================
RPR1xx    determinism — no wall clock / global RNG / set-order decisions
RPR2xx    layering — import graph vs ``layers.toml`` + docstring drift
RPR3xx    lifecycle — paired handler/timer cleanup outside the registry
RPR4xx    perf/obs hygiene — ``__slots__`` records, nil-guarded obs
========  ==============================================================

Suppress a finding per line with a *justified* comment::

    rng = random.Random(node.ident)  # repro-lint: disable=RPR101 per-node phase, seeded by ident

A bare ``disable=`` without justification earns RPR001 and the original
violation stands.  See ``docs/static-analysis.md`` for the full catalogue,
CLI reference and the baseline workflow.

Layer contract: this package *owns invariant enforcement* — it is
stdlib-only, imports nothing from ``repro`` at analysis time (the linter
must never be taken down by a bug in the code it lints), and nothing in
``src/repro`` imports it; it is reached only through ``python -m
repro.lint`` and the tests.
"""

from repro.lint.engine import (
    FileContext,
    LintEngine,
    LintReport,
    ProjectContext,
    Violation,
    load_baseline,
    write_baseline,
)
from repro.lint.layers import (
    Contract,
    LayerMap,
    LayerPolicy,
    contract_drift,
    default_layers_path,
    load_layer_map,
    parse_contract,
    parse_toml,
)
from repro.lint.rules import REGISTRY, Rule, all_rules, rule

__all__ = [
    "Contract",
    "FileContext",
    "LayerMap",
    "LayerPolicy",
    "LintEngine",
    "LintReport",
    "ProjectContext",
    "REGISTRY",
    "Rule",
    "Violation",
    "all_rules",
    "contract_drift",
    "default_layers_path",
    "load_baseline",
    "load_layer_map",
    "parse_contract",
    "parse_toml",
    "rule",
    "write_baseline",
]
