"""RPR3xx — lifecycle hygiene.

PR 3 made handler/timer leaks *structurally* impossible for code that goes
through the Service registry (``ServiceContext.every`` /
``node_handlers``): the registry sweeps everything on detach and node
departure.  Code that wires raw ``node.register_handler`` or ``sim.every``
outside that path re-acquires the leak risk — RPR301 demands the class
own the matching ``unregister_handler`` / ``stop``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.engine import FileContext, ProjectContext, Violation
from repro.lint.rules import rule

DEFAULT_REGISTRY_FILES = frozenset(
    {"repro/cluster/registry.py", "repro/cluster/service.py"}
)

_STOP_ATTRS = frozenset({"stop", "stop_all", "cancel"})


def _registry_files(project: ProjectContext) -> frozenset:
    layers = project.layers
    if layers is not None:
        cfg = layers.config.get("lifecycle", {})
        if "registry_files" in cfg:
            return frozenset(cfg["registry_files"])
    return DEFAULT_REGISTRY_FILES


def _receiver_chain(node: ast.AST) -> List[str]:
    """``self.ctx.every`` -> ['self', 'ctx', 'every'] (best effort)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.extend(_receiver_chain(node.func))
    return list(reversed(parts))


def _attr_calls(tree: ast.AST, attr: str) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == attr
    ]


@rule(
    "RPR301",
    "paired-lifecycle-cleanup",
    "raw register_handler/sim.every outside the registry path needs a paired "
    "unregister/stop in the same class",
)
def check_lifecycle_pairing(
    ctx: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    key = ctx.relpath[len("src/"):] if ctx.relpath.startswith("src/") else ctx.relpath
    if key in _registry_files(project):
        return  # the registry path itself owns cleanup by construction
    for klass in ast.walk(ctx.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        has_unregister = bool(_attr_calls(klass, "unregister_handler"))
        has_stop = any(
            _attr_calls(klass, attr) for attr in _STOP_ATTRS
        )
        for call in _attr_calls(klass, "register_handler"):
            if not has_unregister:
                yield ctx.violation(
                    "RPR301",
                    call,
                    f"class {klass.name} calls register_handler outside the "
                    f"Service registry path without a paired "
                    f"unregister_handler; route through node_handlers()/"
                    f"ServiceRegistry or unregister in teardown",
                )
        for call in _attr_calls(klass, "every"):
            chain = _receiver_chain(call.func)
            if "ctx" in chain[:-1]:
                continue  # ServiceContext.every: registry-owned auto-cancel
            if not has_stop:
                yield ctx.violation(
                    "RPR301",
                    call,
                    f"class {klass.name} arms a periodic timer via "
                    f"{'.'.join(chain)}(...) without a paired stop()/cancel() "
                    f"in the class; use ctx.every(...) or stop the timer in "
                    f"teardown",
                )
