"""RPR2xx — layer contracts.

RPR201 checks every ``repro.*`` import edge against the machine-readable
layer map (``repro/lint/layers.toml``); RPR202 cross-validates that map
against the prose owns/may-import contracts in the package ``__init__``
docstrings, so code, map and prose are pinned to each other.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import FileContext, ProjectContext, Violation, walk_with_depth
from repro.lint.layers import contract_drift, parse_contract
from repro.lint.rules import rule


def _import_edges(ctx: FileContext) -> Iterator[Tuple[ast.AST, str, bool]]:
    """Yield ``(node, imported_module, is_lazy)`` for every repro import."""
    for node, depth in walk_with_depth(ctx.tree):
        lazy = depth > 0
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "repro" or a.name.startswith("repro."):
                    yield node, a.name, lazy
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                resolved = _resolve_relative(ctx, node)
                if resolved is not None:
                    yield node, resolved, lazy
            elif node.module == "repro":
                for a in node.names:
                    yield node, f"repro.{a.name}", lazy
            elif node.module and node.module.startswith("repro."):
                yield node, node.module, lazy


def _resolve_relative(ctx: FileContext, node: ast.ImportFrom) -> Optional[str]:
    if ctx.module is None:
        return None
    parts = ctx.module.split(".")
    if not ctx.is_package:
        parts = parts[:-1]
    # one leading dot = the containing package; each extra dot goes up one
    parts = parts[: len(parts) - (node.level - 1)]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts) if parts else None


def _target_package(module: str) -> str:
    dotted = module.split(".")
    return dotted[1] if len(dotted) > 1 else "repro"


@rule(
    "RPR201",
    "layer-imports",
    "every repro.* import edge must be allowed by the layer map",
)
def check_layer_imports(
    ctx: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    layers = project.layers
    if layers is None or ctx.package is None:
        return
    policy = layers.policy_for(ctx.relpath, ctx.package)
    if policy is None:
        yield ctx.violation(
            "RPR201",
            ctx.tree,
            f"package `{ctx.package}` has no [package.{ctx.package}] entry "
            f"in layers.toml; declare its layer contract before importing "
            f"across packages",
        )
        return
    for node, module, lazy in _import_edges(ctx):
        target = _target_package(module)
        if target == ctx.package:
            continue
        if target not in policy.reachable:
            yield ctx.violation(
                "RPR201",
                node,
                f"`{ctx.package}` may not import `{target}` "
                f"(module {module}); allowed: "
                f"{sorted(policy.reachable) or 'nothing in repro'} "
                f"per layers.toml",
            )
            continue
        if not lazy and target not in policy.may_import:
            yield ctx.violation(
                "RPR201",
                node,
                f"`{ctx.package}` may import `{target}` only lazily "
                f"(function scope), not at module scope (module {module})",
            )
            continue
        allowed_via = policy.via.get(target)
        if allowed_via is not None and not any(
            module == v or module.startswith(v + ".") for v in allowed_via
        ):
            yield ctx.violation(
                "RPR201",
                node,
                f"`{ctx.package}` may reach `{target}` only via "
                f"{', '.join(allowed_via)} (imported {module})",
            )


@rule(
    "RPR202",
    "layer-contract-drift",
    "layers.toml must agree with the prose layer contracts in __init__ docstrings",
)
def check_contract_drift(
    ctx: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    layers = project.layers
    if layers is None or ctx.package is None or not ctx.is_package:
        return
    doc = ast.get_docstring(ctx.tree, clean=False)
    contract = parse_contract(doc, set(layers.packages))
    if contract.empty:
        return
    anchor = ctx.tree.body[0] if ctx.tree.body else ctx.tree
    drift: List[str] = contract_drift(layers, ctx.package, contract)
    for message in drift:
        yield ctx.violation("RPR202", anchor, message)
