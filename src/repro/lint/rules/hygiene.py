"""RPR4xx — performance and observability hygiene.

RPR401: the hot-path record modules (protocol messages, sim events and
datagrams) allocate millions of instances per run; PR 5 measured the
``__slots__`` win, so every class there must be slotted (or a NamedTuple).

RPR402: obs instrumentation must be RNG/schedule-neutral and near-free
when disabled (PR 6 discipline).  The one blessed shape is the
nil-guarded local bind::

    obs = self.obs            # one attribute load
    if obs is not None:
        obs.record(...)

Chained uses (``self.obs.record(...)``) re-load the attribute per call
and, unguarded, crash every untraced run; guards on the attribute chain
itself (``if self.net.obs is not None``) re-load inside the branch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, ProjectContext, Violation
from repro.lint.rules import rule

DEFAULT_SLOTS_MODULES = frozenset(
    {"repro/core/messages.py", "repro/sim/events.py", "repro/sim/network.py"}
)
DEFAULT_OBS_PACKAGES = frozenset(
    {"cluster", "compute", "core", "services", "sim", "storage"}
)

_EXEMPT_BASES = frozenset(
    {"NamedTuple", "Exception", "BaseException", "Protocol", "Enum", "IntEnum"}
)


def _cfg(project: ProjectContext, table: str, key: str, default: frozenset) -> frozenset:
    layers = project.layers
    if layers is not None:
        cfg = layers.config.get(table, {})
        if key in cfg:
            return frozenset(cfg[key])
    return default


def _base_names(klass: ast.ClassDef):
    for base in klass.bases:
        if isinstance(base, ast.Name):
            yield base.id
        elif isinstance(base, ast.Attribute):
            yield base.attr


def _has_slots(klass: ast.ClassDef) -> bool:
    for stmt in klass.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == "__slots__":
                return True
    return False


def _is_slotted_dataclass(klass: ast.ClassDef) -> bool:
    for deco in klass.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = deco.func.id if isinstance(deco.func, ast.Name) else (
            deco.func.attr if isinstance(deco.func, ast.Attribute) else ""
        )
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
    return False


@rule(
    "RPR401",
    "hot-path-slots",
    "classes in hot-path record modules must declare __slots__",
)
def check_hot_path_slots(
    ctx: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    key = ctx.relpath[len("src/"):] if ctx.relpath.startswith("src/") else ctx.relpath
    if key not in _cfg(project, "slots", "modules", DEFAULT_SLOTS_MODULES):
        return
    for klass in ctx.tree.body:
        if not isinstance(klass, ast.ClassDef):
            continue
        bases = set(_base_names(klass))
        if bases & _EXEMPT_BASES:
            continue
        if _has_slots(klass) or _is_slotted_dataclass(klass):
            continue
        yield ctx.violation(
            "RPR401",
            klass,
            f"class {klass.name} in hot-path module {key} has no __slots__; "
            f"use @dataclass(slots=True), an explicit __slots__ tuple or a "
            f"NamedTuple (PR 5 measured the per-instance dict cost)",
        )


def _obs_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "obs"


@rule(
    "RPR402",
    "nil-guarded-obs",
    "obs instrumentation must local-bind then nil-guard (obs = self.obs; "
    "if obs is not None)",
)
def check_obs_guard(
    ctx: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    if ctx.package not in _cfg(project, "obs_guard", "packages", DEFAULT_OBS_PACKAGES):
        return
    for node in ast.walk(ctx.tree):
        # chained use: <expr>.obs.<attr> / <expr>.obs(...) / <expr>.obs[...]
        inner = None
        if isinstance(node, ast.Attribute) and _obs_attr(node.value):
            inner = node.value
        elif isinstance(node, (ast.Call, ast.Subscript)) and _obs_attr(
            node.func if isinstance(node, ast.Call) else node.value
        ):
            inner = node.func if isinstance(node, ast.Call) else node.value
        if inner is not None and isinstance(inner.ctx, ast.Load):
            yield ctx.violation(
                "RPR402",
                node,
                "chained use of `.obs` re-loads the attribute per record; "
                "bind it locally first (obs = self.obs; if obs is not None)",
            )
            continue
        # guard on the attribute chain itself: if <expr>.obs is (not) None
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            if isinstance(node.ops[0], (ast.Is, ast.IsNot)):
                left, right = node.left, node.comparators[0]
                operand = None
                if isinstance(right, ast.Constant) and right.value is None:
                    operand = left
                elif isinstance(left, ast.Constant) and left.value is None:
                    operand = right
                if operand is not None and _obs_attr(operand):
                    yield ctx.violation(
                        "RPR402",
                        node,
                        "nil-guard tests the `.obs` attribute chain directly; "
                        "the branch re-loads it — bind locally first "
                        "(obs = self.obs; if obs is not None)",
                    )
