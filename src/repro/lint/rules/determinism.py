"""RPR1xx — fixed-seed determinism.

The whole perf trajectory rests on bit-identical metrics at a fixed seed
(see ``docs/performance.md``): one wall-clock read or global-RNG draw in a
simulation package and every "identical run" comparison silently rots.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.lint.engine import FileContext, ProjectContext, Violation
from repro.lint.rules import rule

#: fallback when no layer map / [determinism] table is available
DEFAULT_PACKAGES = frozenset(
    {"compute", "core", "obs", "services", "sim", "storage"}
)

#: module attribute -> why it is nondeterministic (or wall-clock)
_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.process_time": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
    "random.SystemRandom": "OS entropy",
}

#: attributes of the *module-level* ``random`` / ``numpy.random`` global
#: state that are allowed (seeded-instance constructors only)
_RANDOM_OK = frozenset({"Random"})
_NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"}
)


def _flagged_packages(project: ProjectContext) -> frozenset:
    layers = project.layers
    if layers is not None:
        cfg = layers.config.get("determinism", {})
        if "packages" in cfg:
            return frozenset(cfg["packages"])
    return DEFAULT_PACKAGES


def _alias_map(tree: ast.AST) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the file."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for a in node.names:
                if a.name != "*":
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> str:
    """Resolve ``np.random.seed`` -> ``numpy.random.seed`` (or "")."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


@rule(
    "RPR101",
    "no-nondeterministic-sources",
    "no wall-clock, global-RNG or OS-entropy reads in simulation packages",
)
def check_nondeterministic_sources(
    ctx: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    if ctx.package not in _flagged_packages(project):
        return
    aliases = _alias_map(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func, aliases)
        if not dotted:
            continue
        reason = _BANNED_CALLS.get(dotted)
        if reason is None and dotted.startswith("secrets."):
            reason = "OS entropy"
        if reason is None and dotted.startswith("random."):
            attr = dotted.split(".", 1)[1]
            if "." not in attr and attr not in _RANDOM_OK:
                reason = "global random module state"
        if reason is None and dotted.startswith("numpy.random."):
            attr = dotted.split(".", 2)[2]
            if attr not in _NP_RANDOM_OK:
                reason = "global numpy.random state"
        if reason is not None:
            yield ctx.violation(
                "RPR101",
                node,
                f"nondeterministic source `{dotted}()` ({reason}) in "
                f"deterministic package `{ctx.package}`; draw from a seeded "
                f"generator (sim.rng substream or random.Random(seed))",
            )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "intersection", "union", "difference", "symmetric_difference",
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # `a | b` etc. over two set expressions
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@rule(
    "RPR102",
    "no-set-order-iteration",
    "no iteration over set expressions feeding ordering-sensitive decisions",
)
def check_set_iteration(
    ctx: FileContext, project: ProjectContext
) -> Iterator[Violation]:
    """Set iteration order depends on ``PYTHONHASHSEED`` for str/object
    elements; in the flagged packages every such loop feeds a scheduling
    or routing decision, so it must go through ``sorted(...)``."""
    if ctx.package not in _flagged_packages(project):
        return
    iters = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            iters.extend(g.iter for g in node.generators)
    for it in iters:
        if _is_set_expr(it):
            yield ctx.violation(
                "RPR102",
                it,
                "iteration over a set expression (hash-order, varies with "
                "PYTHONHASHSEED); wrap in sorted(...) to pin the order",
            )
