"""The rule registry: stable ``RPRxxx`` codes -> checker functions.

Code families
  RPR1xx  determinism (wall clock, global RNG, set-order decisions)
  RPR2xx  layering (import-graph conformance, contract drift)
  RPR3xx  lifecycle hygiene (handler/timer pairing)
  RPR4xx  performance / observability hygiene (__slots__, nil-guarded obs)

Importing this package populates :data:`REGISTRY`; rules register
themselves with the :func:`rule` decorator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator

from repro.lint.engine import FileContext, ProjectContext, Violation

__all__ = ["REGISTRY", "Rule", "all_rules", "rule"]


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    check: Callable[[FileContext, ProjectContext], Iterator[Violation]]


REGISTRY: Dict[str, Rule] = {}


def rule(code: str, name: str, summary: str):
    def decorate(fn):
        if code in REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        REGISTRY[code] = Rule(code=code, name=name, summary=summary, check=fn)
        return fn
    return decorate


def all_rules() -> Dict[str, Rule]:
    """Import every rule module (idempotent) and return the registry."""
    from repro.lint.rules import determinism, hygiene, layering, lifecycle  # noqa: F401
    return REGISTRY
