"""The G / NG / NGSA routing algorithms of §III.f.

The router is *pure decision logic*: given a node-local view (its routing
table and hierarchy knowledge) and an in-flight :class:`LookupRequest`, it
returns a :class:`Decision`.  The protocol engine (:mod:`repro.core.node`)
executes decisions by sending datagrams; tests exercise the router directly
with synthetic views.

Algorithms
----------
* **G (greedy, Fig. 3)** — pick the candidate minimising the tessellation
  distance ``D(n, x)``.  Forward when the *halving criterion*
  ``D(n, x) <= D(a, x) / 2`` holds, when the current node is at level 0, or
  when the request is descending from a parent; otherwise escalate through
  the superior-node list (closest superior satisfying the criterion, else
  the highest-level superior).  Not loop-free — the TTL cap backstops it.
* **NG (non-greedy)** — take the *first* candidate strictly closer to the
  target in Euclidean distance ("the procedure ends when a node satisfying
  the condition is found").
* **NGSA (non-greedy with fall back)** — NG, but the other improving
  candidates are appended to the request as alternates; a dead end pops the
  best alternate instead of failing ("at the expense of adding data to the
  request").

TTL semantics (§III.f): requests above ``ttl_max`` (255) are discarded;
requests whose TTL exceeds the hierarchy height switch to plain Euclidean
distance — "a request that has a higher TTL means that the network is
unstable and/or disrupted".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.core.config import TreePConfig
from repro.core.distance import halving_criterion, treep_distance
from repro.core.ids import IdSpace
from repro.core.messages import LookupRequest
from repro.core.routing_table import Entry, RoutingTable


class LookupAlgorithm(str, enum.Enum):
    """The three routing algorithms evaluated in §IV."""

    GREEDY = "G"
    NON_GREEDY = "NG"
    NON_GREEDY_FALLBACK = "NGSA"

    @classmethod
    def parse(cls, name: str) -> "LookupAlgorithm":
        for algo in cls:
            if algo.value == name or algo.name == name:
                return algo
        raise ValueError(f"unknown lookup algorithm {name!r}")


class NodeView(Protocol):
    """What the router may see: strictly node-local state."""

    ident: int
    max_level: int
    table: RoutingTable
    height: int  # node's current estimate of the hierarchy height
    config: TreePConfig


class DecisionKind(enum.Enum):
    FOUND = "found"
    FORWARD = "forward"
    NOT_FOUND = "not-found"
    DISCARD = "discard"


@dataclass(frozen=True)
class Decision:
    """Outcome of one local routing step."""

    kind: DecisionKind
    next_hop: Optional[int] = None
    resolved: Optional[int] = None
    alternates: Tuple[int, ...] = ()

    @staticmethod
    def found(resolved: int) -> "Decision":
        return Decision(DecisionKind.FOUND, resolved=resolved)

    @staticmethod
    def forward(next_hop: int, alternates: Tuple[int, ...] = ()) -> "Decision":
        return Decision(DecisionKind.FORWARD, next_hop=next_hop, alternates=alternates)

    @staticmethod
    def not_found() -> "Decision":
        return Decision(DecisionKind.NOT_FOUND)

    @staticmethod
    def discard() -> "Decision":
        return Decision(DecisionKind.DISCARD)


@dataclass(frozen=True)
class LookupResult:
    """Origin-side outcome of one lookup, consumed by the harness."""

    request_id: int
    origin: int
    target: int
    algo: LookupAlgorithm
    found: bool
    hops: int
    timed_out: bool = False
    path: Tuple[int, ...] = ()


# --------------------------------------------------------------------------
# candidate enumeration
# --------------------------------------------------------------------------

def _metric(view: NodeView, entry_id: int, entry_level: int, target: int, euclid: bool) -> float:
    space = view.config.space
    if euclid:
        return float(space.distance(entry_id, target))
    return treep_distance(space, entry_id, entry_level, target, view.height)


def _level_zero_candidates(view: NodeView, exclude: frozenset[int]) -> List[Entry]:
    """``Search_Level_Zero()``: children and level-0 neighbourhood only."""
    t = view.table
    ids = set(t.level0) | set(t.children) | set(t.neighbour_children)
    return [t.get(i) for i in sorted(ids) if i not in exclude and t.get(i) is not None]  # type: ignore[misc]


def _full_candidates(
    view: NodeView, exclude: frozenset[int], target: Optional[int] = None
) -> List[Entry]:
    """``Search_level_A()``: the node's whole routing table.

    Deterministic order, table priority as implicit in Fig. 3: children
    first (descending the tree resolves fastest), then the same-level buses
    from the highest level down, parents, superiors, and the level-0
    neighbours last (they are the smallest possible steps along the line).
    Within a group, candidates are ordered by distance to *target* when
    given — this is what lets NG's "first improving candidate" rule achieve
    the logarithmic hop counts the paper reports: the scan meets the big
    tessellation jumps before the single-neighbour shuffles.
    """
    t = view.table
    space = view.config.space

    def by_target(ids) -> List[int]:
        ids = [i for i in ids if i not in exclude]
        if target is None:
            return sorted(ids)
        return sorted(ids, key=lambda i: (space.distance(i, target), i))

    ordered: List[int] = []
    seen: set[int] = set()
    for group in (
        by_target(t.children),
        by_target(t.neighbour_children),
        *(by_target(t.level_tables.get(l, ())) for l in sorted(t.level_tables, reverse=True)),
        by_target(set(t.parents.values())),
        by_target(t.superiors),
        by_target(t.level0),
    ):
        for i in group:
            if i not in seen:
                seen.add(i)
                ordered.append(i)
    return [t.get(i) for i in ordered if t.get(i) is not None]  # type: ignore[misc]


# --------------------------------------------------------------------------
# the router
# --------------------------------------------------------------------------

def route(view: NodeView, req: LookupRequest) -> Decision:
    """One local routing step for *req* at *view* (Fig. 3 and variants).

    The decision never uses non-local knowledge: only the node's own routing
    table, its level, and fields carried by the request.
    """
    cfg = view.config
    if req.ttl > cfg.ttl_max:
        return Decision.discard()

    # "IF target X is in the routing table THEN transmit back the result".
    if req.target == view.ident:
        return Decision.found(view.ident)
    if view.table.knows(req.target):
        return Decision.found(req.target)

    # Disruption mode: beyond the hierarchy height, fall back to Euclidean.
    euclid = cfg.euclidean_fallback and req.ttl > view.height

    exclude = frozenset(req.path) | {view.ident}
    algo = LookupAlgorithm.parse(req.algo)
    if algo is LookupAlgorithm.GREEDY:
        return _route_greedy(view, req, exclude, euclid)
    return _route_non_greedy(view, req, exclude, euclid,
                             with_fallback=algo is LookupAlgorithm.NON_GREEDY_FALLBACK)


def _route_greedy(
    view: NodeView, req: LookupRequest, exclude: frozenset[int], euclid: bool
) -> Decision:
    cfg = view.config
    space = cfg.space
    from_level1_parent = req.from_parent_level == 1 and view.max_level == 0

    if from_level1_parent:
        cands = _level_zero_candidates(view, exclude)
    else:
        cands = _full_candidates(view, exclude)

    best: Optional[Entry] = None
    best_d = float("inf")
    for e in cands:
        d = _metric(view, e.ident, e.max_level, req.target, euclid)
        if d < best_d:
            best, best_d = e, d

    d_here = _metric(view, view.ident, view.max_level, req.target, euclid)

    if best is not None:
        # Fig. 3's forwarding cascade.
        if from_level1_parent:
            return Decision.forward(best.ident)
        if halving_criterion(best_d, d_here):
            return Decision.forward(best.ident)
        if view.max_level == 0:
            return Decision.forward(best.ident)
        if req.from_parent_level == view.max_level + 1:
            # Query descending from our own parent: keep descending.
            return Decision.forward(best.ident)
        esc = _escalate(view, req, exclude, euclid, d_here)
        if esc is not None:
            return Decision.forward(esc)
        child = _closest_child(view, req.target, exclude)
        if child is not None:
            return Decision.forward(child)
        return Decision.not_found()

    # No candidate at all (every known peer already visited).
    if from_level1_parent:
        return Decision.not_found()
    child = _closest_child(view, req.target, exclude)
    if child is not None:
        return Decision.forward(child)
    esc = _escalate(view, req, exclude, euclid, d_here)
    if esc is not None:
        return Decision.forward(esc)
    return Decision.not_found()


def _closest_child(view: NodeView, target: int, exclude: frozenset[int]) -> Optional[int]:
    """Fig. 3's ``Closest_Child(X)``: descend towards the target's cell.

    Used when no candidate halves the distance and escalation has nowhere
    to go — in particular at the root, whose own ``D`` to everything is 0,
    making the halving criterion unsatisfiable: the only sensible move for
    an interior node is down the subtree covering the target.
    """
    t = view.table
    kids = [i for i in (t.children | t.neighbour_children) if i not in exclude]
    if not kids:
        return None
    space = view.config.space
    return min(kids, key=lambda i: (space.distance(i, target), i))


def _escalate(
    view: NodeView,
    req: LookupRequest,
    exclude: frozenset[int],
    euclid: bool,
    d_here: float,
) -> Optional[int]:
    """Superior-node-list escalation (Fig. 3, both ELSE branches).

    Prefer the superior closest to the target that satisfies the halving
    criterion; failing that, the superior with the highest level.
    """
    t = view.table
    superiors = [i for i in t.superiors | set(t.parents.values()) if i not in exclude]
    if not superiors:
        return None
    best_id: Optional[int] = None
    best_d = float("inf")
    for i in superiors:
        e = t.get(i)
        lvl = e.max_level if e is not None else 1
        d = _metric(view, i, lvl, req.target, euclid)
        if halving_criterion(d, d_here) and d < best_d:
            best_id, best_d = i, d
    if best_id is not None:
        return best_id
    # None halves the distance: highest-level superior.
    def level_of(i: int) -> int:
        e = t.get(i)
        return e.max_level if e is not None else 0

    return max(superiors, key=lambda i: (level_of(i), -view.config.space.distance(i, req.target)))


def _route_non_greedy(
    view: NodeView,
    req: LookupRequest,
    exclude: frozenset[int],
    euclid: bool,
    with_fallback: bool,
) -> Decision:
    space = view.config.space
    d_here = float(space.distance(view.ident, req.target))
    improving: List[int] = []
    for e in _full_candidates(view, exclude, target=req.target):
        if float(space.distance(e.ident, req.target)) < d_here:
            improving.append(e.ident)
            if not with_fallback:
                # NG: first improving candidate ends the search.
                return Decision.forward(e.ident)
            if len(improving) >= 4:  # bound the per-hop payload growth
                break

    if improving:
        # NGSA: forward to the first, carry the rest as alternates.
        return Decision.forward(improving[0], alternates=tuple(improving[1:]))

    if with_fallback:
        # Dead end: consume the nearest alternate accumulated upstream.
        live_alts = [a for a in req.alternates if a not in exclude]
        if live_alts:
            nxt = min(live_alts, key=lambda a: space.distance(a, req.target))
            rest = tuple(a for a in live_alts if a != nxt)
            return Decision.forward(nxt, alternates=rest)

    return Decision.not_found()


# ---------------------------------------------------------------------------
# key-space routing (service layer)
# ---------------------------------------------------------------------------

def greedy_key_next_hop(
    view: NodeView,
    key_id: int,
    exclude: frozenset = frozenset(),
    improving_only: bool = True,
) -> Optional[int]:
    """Closest known next hop towards *key_id*, over the whole table.

    Key-space analogue of the NG rule used by the DHT and replicated-storage
    services: a key is owned by the node the greedy walk terminates on (no
    entry is closer to ``key_id`` than the current node), the TreeP version
    of consistent hashing's successor rule.  With ``improving_only`` (the
    default) only strictly-closer candidates qualify and ``None`` means this
    node is locally closest, i.e. responsible for the key; without it the
    best non-excluded candidate is returned even when it does not improve
    (the storage layer's sloppy-read fallback hop).
    """
    space = view.config.space
    best: Optional[int] = None
    best_d = space.distance(view.ident, key_id) if improving_only else None
    for e in view.table.candidates():
        if e.ident in exclude:
            continue
        d = space.distance(e.ident, key_id)
        if best_d is None or d < best_d:
            best, best_d = e.ident, d
    return best
