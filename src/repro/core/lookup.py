"""The G / NG / NGSA routing algorithms of §III.f.

The router is *pure decision logic*: given a node-local view (its routing
table and hierarchy knowledge) and an in-flight :class:`LookupRequest`, it
returns a :class:`Decision`.  The protocol engine (:mod:`repro.core.node`)
executes decisions by sending datagrams; tests exercise the router directly
with synthetic views.

Algorithms
----------
* **G (greedy, Fig. 3)** — pick the candidate minimising the tessellation
  distance ``D(n, x)``.  Forward when the *halving criterion*
  ``D(n, x) <= D(a, x) / 2`` holds, when the current node is at level 0, or
  when the request is descending from a parent; otherwise escalate through
  the superior-node list (closest superior satisfying the criterion, else
  the highest-level superior).  Not loop-free — the TTL cap backstops it.
* **NG (non-greedy)** — take the *first* candidate strictly closer to the
  target in Euclidean distance ("the procedure ends when a node satisfying
  the condition is found").
* **NGSA (non-greedy with fall back)** — NG, but the other improving
  candidates are appended to the request as alternates; a dead end pops the
  best alternate instead of failing ("at the expense of adding data to the
  request").

TTL semantics (§III.f): requests above ``ttl_max`` (255) are discarded;
requests whose TTL exceeds the hierarchy height switch to plain Euclidean
distance — "a request that has a higher TTL means that the network is
unstable and/or disrupted".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Protocol, Tuple

import numpy as np

from repro.core.config import TreePConfig
from repro.core.distance import halving_criterion, treep_distance
from repro.core.ids import IdSpace
from repro.core.messages import LookupRequest
from repro.core.routing_table import Entry, RoutingTable


class LookupAlgorithm(str, enum.Enum):
    """The three routing algorithms evaluated in §IV."""

    GREEDY = "G"
    NON_GREEDY = "NG"
    NON_GREEDY_FALLBACK = "NGSA"

    @classmethod
    def parse(cls, name: str) -> "LookupAlgorithm":
        for algo in cls:
            if algo.value == name or algo.name == name:
                return algo
        raise ValueError(f"unknown lookup algorithm {name!r}")


#: value/name -> member, so the per-hop parse is one dict hit.
_ALGO_BY_TOKEN = {a.value: a for a in LookupAlgorithm}
_ALGO_BY_TOKEN.update({a.name: a for a in LookupAlgorithm})


class NodeView(Protocol):
    """What the router may see: strictly node-local state."""

    ident: int
    max_level: int
    table: RoutingTable
    height: int  # node's current estimate of the hierarchy height
    config: TreePConfig


class DecisionKind(enum.Enum):
    FOUND = "found"
    FORWARD = "forward"
    NOT_FOUND = "not-found"
    DISCARD = "discard"


class Decision(NamedTuple):
    """Outcome of one local routing step.

    A ``NamedTuple`` rather than a frozen dataclass: one is allocated per
    routing step, and tuple construction skips the per-field
    ``object.__setattr__`` cost of frozen dataclasses while staying
    immutable.
    """

    kind: DecisionKind
    next_hop: Optional[int] = None
    resolved: Optional[int] = None
    alternates: Tuple[int, ...] = ()

    @staticmethod
    def found(resolved: int) -> "Decision":
        return Decision(DecisionKind.FOUND, resolved=resolved)

    @staticmethod
    def forward(next_hop: int, alternates: Tuple[int, ...] = ()) -> "Decision":
        return Decision(DecisionKind.FORWARD, next_hop=next_hop, alternates=alternates)

    @staticmethod
    def not_found() -> "Decision":
        return Decision(DecisionKind.NOT_FOUND)

    @staticmethod
    def discard() -> "Decision":
        return Decision(DecisionKind.DISCARD)


#: Preallocated terminal decisions — they carry no per-request payload.
_NOT_FOUND = Decision(DecisionKind.NOT_FOUND)
_DISCARD = Decision(DecisionKind.DISCARD)


@dataclass(frozen=True, slots=True)
class LookupResult:
    """Origin-side outcome of one lookup, consumed by the harness."""

    request_id: int
    origin: int
    target: int
    algo: LookupAlgorithm
    found: bool
    hops: int
    timed_out: bool = False
    path: Tuple[int, ...] = ()


# --------------------------------------------------------------------------
# candidate enumeration
# --------------------------------------------------------------------------

def _metric(view: NodeView, entry_id: int, entry_level: int, target: int, euclid: bool) -> float:
    space = view.config.space
    if euclid:
        return float(space.distance(entry_id, target))
    return treep_distance(space, entry_id, entry_level, target, view.height)


#: ``(extent, height) -> per-level tessellation radii`` — the §III.f
#: ``L / 2**(h - lvl)`` values.  Heights are tiny (≈ log N) and extents are
#: config constants, so this process-wide memo stays a handful of entries
#: while removing a ``cell_radius`` call (validation + float pow) from every
#: candidate visit on the greedy hot path.  Values are computed by the same
#: expression as :func:`repro.core.distance.cell_radius`, so the cached
#: floats are bit-identical to the uncached ones.
_RADII_CACHE: dict[Tuple[int, int], Tuple[float, ...]] = {}


def _radii(extent: int, height: int) -> Tuple[float, ...]:
    key = (extent, height)
    radii = _RADII_CACHE.get(key)
    if radii is None:
        radii = tuple(extent / float(2 ** max(height - lvl, 0))
                      for lvl in range(height + 1))
        _RADII_CACHE[key] = radii
    return radii


def _ordered_triples(view: NodeView) -> List[Tuple[int, int, Entry]]:
    """Fig. 3's full candidate order as ``(ident, max_level, entry)``
    triples, memoised per routing-table version.

    The order (children, neighbour-children, buses top-down, parents,
    superiors, level-0; each group sorted by id; first occurrence wins) is
    a pure function of role membership, and ``max_level`` metadata changes
    bump the version too (see ``RoutingTable.upsert``), so the built list
    stays valid until the table's
    :attr:`~repro.core.routing_table.RoutingTable.version` bumps.
    Per-request ``exclude`` filtering happens at iteration time —
    filtering before or after the sort/dedupe yields the same sequence, so
    cached and uncached enumeration are step-for-step identical.  This is
    the "avoid per-hop list rebuilds" half of the 10k-node hot-path work:
    at scale, interior nodes are visited by thousands of lookups between
    table changes.
    """
    t = view.table
    version = t._version
    cached = t.cache.get("lookup_order_t")
    if cached is not None and cached[0] == version:
        return cached[1]
    ordered: List[int] = []
    seen: set[int] = set()
    for group in (
        sorted(t.children),
        sorted(t.neighbour_children),
        *(sorted(t.level_tables.get(l, ())) for l in sorted(t.level_tables, reverse=True)),
        sorted(set(t.parents.values())),
        sorted(t.superiors),
        sorted(t.level0),
    ):
        for i in group:
            if i not in seen:
                seen.add(i)
                ordered.append(i)
    get = t.get
    triples = [(e.ident, e.max_level, e)
               for e in map(get, ordered) if e is not None]
    t.cache["lookup_order_t"] = (version, triples)
    return triples


def _ordered_entries(view: NodeView) -> List[Entry]:
    """Entry view of :func:`_ordered_triples` (the NG/NGSA scan input)."""
    t = view.table
    cached = t.cache.get("lookup_order")
    if cached is not None and cached[0] == t._version:
        return cached[1]
    entries = [e for _, _, e in _ordered_triples(view)]
    t.cache["lookup_order"] = (t._version, entries)
    return entries


def _level_zero_triples(view: NodeView) -> List[Tuple[int, int, Entry]]:
    """``Search_Level_Zero()`` candidates, memoised like :func:`_ordered_triples`."""
    t = view.table
    version = t._version
    cached = t.cache.get("lookup_l0_t")
    if cached is not None and cached[0] == version:
        return cached[1]
    ids = set(t.level0) | set(t.children) | set(t.neighbour_children)
    get = t.get
    triples = [(e.ident, e.max_level, e)
               for e in map(get, sorted(ids)) if e is not None]
    t.cache["lookup_l0_t"] = (version, triples)
    return triples


def _level_zero_entries(view: NodeView) -> List[Entry]:
    return [e for _, _, e in _level_zero_triples(view)]


#: Below this many candidates the plain Python argmin loop beats NumPy's
#: fixed per-ufunc dispatch overhead (measured crossover ≈ 8–10).
_NP_MIN_CANDIDATES = 8

#: The vectorised path requires ids (and id differences) to be exact in
#: int64/float64; beyond 2**53 the float pipeline would round where the
#: scalar loop (arbitrary-precision ints) stays exact, and past 2**63
#: ``np.fromiter(dtype=int64)`` overflows outright.  Larger extents are a
#: supported config knob, so they keep the scalar loop.
_NP_MAX_EXTENT = 2 ** 53

_INF = float("inf")


def _np_candidates(view: NodeView, l0: bool):
    """Vectorised view of the candidate order: ``(ids int64 array, entries,
    int64 scratch, float64 scratch, per-candidate radius)`` — or ``None``
    for tables below :data:`_NP_MIN_CANDIDATES` (cached verdict either way).

    Keyed on ``(table version, height)`` — the radius column depends on the
    node's current height estimate.  The float pipeline reproduces the
    scalar metric exactly: ids are < 2**53 so the int64→float64 conversions
    are exact, ``|id - target| - radius`` is the same IEEE subtraction, and
    the 0-clamp equals the ``d <= radius → 0`` branch.  ``argmin`` returns
    the *first* minimum, matching the scan loop's strict ``<`` tie-break.
    """
    t = view.table
    key = "lookup_np_l0" if l0 else "lookup_np"
    height = view.height
    cached = t.cache.get(key)
    if cached is not None and cached[0] == t._version and cached[1] == height:
        return cached[2]
    triples = _level_zero_triples(view) if l0 else _ordered_triples(view)
    if len(triples) < _NP_MIN_CANDIDATES:
        # Leaf-sized tables stay on the scalar loop; cache the verdict so
        # warm hops skip straight to it.
        t.cache[key] = (t._version, height, None)
        return None
    radii = _radii(view.config.space.extent, height)
    ids = np.fromiter((i for i, _, _ in triples), dtype=np.int64,
                      count=len(triples))
    radius = np.fromiter(
        (0.0 if lvl <= 0 else radii[lvl if lvl <= height else height]
         for _, lvl, _ in triples),
        dtype=np.float64, count=len(triples))
    entries = [e for _, _, e in triples]
    payload = (ids, entries, np.empty_like(ids),
               np.empty(len(triples), dtype=np.float64), radius)
    t.cache[key] = (t._version, height, payload)
    return payload


def _level_zero_candidates(view: NodeView, exclude: frozenset[int]) -> List[Entry]:
    """``Search_Level_Zero()``: children and level-0 neighbourhood only."""
    return [e for e in _level_zero_entries(view) if e.ident not in exclude]


def _full_candidates(
    view: NodeView, exclude: frozenset[int], target: Optional[int] = None
) -> List[Entry]:
    """``Search_level_A()``: the node's whole routing table.

    Deterministic order, table priority as implicit in Fig. 3: children
    first (descending the tree resolves fastest), then the same-level buses
    from the highest level down, parents, superiors, and the level-0
    neighbours last (they are the smallest possible steps along the line).
    Within a group, candidates are ordered by distance to *target* when
    given — this is what lets NG's "first improving candidate" rule achieve
    the logarithmic hop counts the paper reports: the scan meets the big
    tessellation jumps before the single-neighbour shuffles.
    """
    if target is None:
        return [e for e in _ordered_entries(view) if e.ident not in exclude]

    t = view.table
    space = view.config.space

    def by_target(ids) -> List[int]:
        ids = [i for i in ids if i not in exclude]
        return sorted(ids, key=lambda i: (space.distance(i, target), i))

    ordered: List[int] = []
    seen: set[int] = set()
    for group in (
        by_target(t.children),
        by_target(t.neighbour_children),
        *(by_target(t.level_tables.get(l, ())) for l in sorted(t.level_tables, reverse=True)),
        by_target(set(t.parents.values())),
        by_target(t.superiors),
        by_target(t.level0),
    ):
        for i in group:
            if i not in seen:
                seen.add(i)
                ordered.append(i)
    return [t.get(i) for i in ordered if t.get(i) is not None]  # type: ignore[misc]


# --------------------------------------------------------------------------
# the router
# --------------------------------------------------------------------------

def route(view: NodeView, req: LookupRequest) -> Decision:
    """One local routing step for *req* at *view* (Fig. 3 and variants).

    The decision never uses non-local knowledge: only the node's own routing
    table, its level, and fields carried by the request.
    """
    cfg = view.config
    if req.ttl > cfg.ttl_max:
        return _DISCARD

    # "IF target X is in the routing table THEN transmit back the result".
    if req.target == view.ident:
        return Decision.found(view.ident)
    if req.target in view.table._entries:  # inlined RoutingTable.knows
        return Decision.found(req.target)

    # Disruption mode: beyond the hierarchy height, fall back to Euclidean.
    euclid = cfg.euclidean_fallback and req.ttl > view.height

    algo = _ALGO_BY_TOKEN.get(req.algo)
    if algo is None:
        algo = LookupAlgorithm.parse(req.algo)
    if algo is LookupAlgorithm.GREEDY:
        # The greedy path materialises its exclusion set lazily — the
        # vectorised argmin works straight off ``req.path``.
        return _route_greedy(view, req, None, euclid)
    exclude = frozenset(req.path + (view.ident,))
    return _route_non_greedy(view, req, exclude, euclid,
                             with_fallback=algo is LookupAlgorithm.NON_GREEDY_FALLBACK)


def _route_greedy(
    view: NodeView, req: LookupRequest,
    exclude: Optional[frozenset[int]], euclid: bool,
) -> Decision:
    cfg = view.config
    space = cfg.space
    from_level1_parent = req.from_parent_level == 1 and view.max_level == 0

    target = req.target
    best: Optional[Entry] = None
    best_d = float("inf")
    if type(space) is IdSpace:
        # Inlined ``_metric`` for the stock 1-D space: |a - b| minus the
        # cached tessellation radius.  Exact ints compare exactly against
        # the float radii (ids are < 2**53), so every comparison — and
        # therefore every Decision — is identical to the generic path;
        # only the per-candidate function calls and float boxing are gone.
        # This loop is the single hottest code path of a 10k-node run.
        height = view.height
        radii = None if euclid else _radii(space.extent, height)
        t = view.table
        payload = None
        if not euclid and space.extent <= _NP_MAX_EXTENT:
            cached = t.cache.get(
                "lookup_np_l0" if from_level1_parent else "lookup_np")
            if (cached is not None and cached[0] == t._version
                    and cached[1] == height):
                payload = cached[2]
            else:
                payload = _np_candidates(view, from_level1_parent)
        if payload is not None:
            # Vectorised argmin over the cached candidate columns — the
            # ufunc pipeline computes the identical metric values (see
            # _np_candidates) with constant Python-side cost.
            ids, np_entries, ibuf, fbuf, radius_col = payload
            np.subtract(ids, target, out=ibuf)
            np.absolute(ibuf, out=ibuf)
            np.subtract(ibuf, radius_col, out=fbuf)
            np.maximum(fbuf, 0.0, out=fbuf)
            # Optimistic exclusion: an already-visited candidate rarely
            # wins the argmin, so re-run it only on a collision instead of
            # masking every path element up front (each NumPy scalar store
            # costs more than a whole argmin at these sizes).  Yields the
            # first non-excluded minimum — exactly the scan loop's pick.
            path = req.path
            while True:
                j = int(fbuf.argmin())
                d = fbuf.item(j)  # plain Python float, no ndarray scalar box
                if d == _INF:
                    break
                winner = np_entries[j]
                if path and winner.ident in path:
                    fbuf[j] = _INF
                    continue
                best, best_d = winner, d
                break
        else:
            triples = (_level_zero_triples(view) if from_level1_parent
                       else _ordered_triples(view))
            if exclude is None:
                exclude = frozenset(req.path + (view.ident,))
            for ident, lvl, e in triples:
                if ident in exclude:
                    continue
                d = ident - target if ident >= target else target - ident
                if radii is not None and lvl > 0:
                    radius = radii[lvl if lvl <= height else height]
                    d = 0.0 if d <= radius else d - radius
                if d < best_d:
                    best, best_d = e, d
        own = view.ident
        d_here = own - target if own >= target else target - own
        if radii is not None:
            lvl = view.max_level
            if lvl > 0:
                radius = radii[lvl if lvl <= height else height]
                d_here = 0.0 if d_here <= radius else d_here - radius
    else:  # pragma: no cover - custom spaces keep the generic path
        if exclude is None:
            exclude = frozenset(req.path + (view.ident,))
        entries = (_level_zero_entries(view) if from_level1_parent
                   else _ordered_entries(view))
        for e in entries:
            if e.ident in exclude:
                continue
            d = _metric(view, e.ident, e.max_level, target, euclid)
            if d < best_d:
                best, best_d = e, d
        d_here = _metric(view, view.ident, view.max_level, req.target, euclid)

    if best is not None:
        # Fig. 3's forwarding cascade.
        if from_level1_parent:
            return Decision.forward(best.ident)
        if halving_criterion(best_d, d_here):
            return Decision.forward(best.ident)
        if view.max_level == 0:
            return Decision.forward(best.ident)
        if req.from_parent_level == view.max_level + 1:
            # Query descending from our own parent: keep descending.
            return Decision.forward(best.ident)
        if exclude is None:
            exclude = frozenset(req.path + (view.ident,))
        esc = _escalate(view, req, exclude, euclid, d_here)
        if esc is not None:
            return Decision.forward(esc)
        child = _closest_child(view, req.target, exclude)
        if child is not None:
            return Decision.forward(child)
        return _NOT_FOUND

    # No candidate at all (every known peer already visited).
    if from_level1_parent:
        return _NOT_FOUND
    if exclude is None:
        exclude = frozenset(req.path + (view.ident,))
    child = _closest_child(view, req.target, exclude)
    if child is not None:
        return Decision.forward(child)
    esc = _escalate(view, req, exclude, euclid, d_here)
    if esc is not None:
        return Decision.forward(esc)
    return _NOT_FOUND


def _closest_child(view: NodeView, target: int, exclude: frozenset[int]) -> Optional[int]:
    """Fig. 3's ``Closest_Child(X)``: descend towards the target's cell.

    Used when no candidate halves the distance and escalation has nowhere
    to go — in particular at the root, whose own ``D`` to everything is 0,
    making the halving criterion unsatisfiable: the only sensible move for
    an interior node is down the subtree covering the target.
    """
    t = view.table
    kids = [i for i in (t.children | t.neighbour_children) if i not in exclude]
    if not kids:
        return None
    space = view.config.space
    return min(kids, key=lambda i: (space.distance(i, target), i))


def _escalate(
    view: NodeView,
    req: LookupRequest,
    exclude: frozenset[int],
    euclid: bool,
    d_here: float,
) -> Optional[int]:
    """Superior-node-list escalation (Fig. 3, both ELSE branches).

    Prefer the superior closest to the target that satisfies the halving
    criterion; failing that, the superior with the highest level.
    """
    t = view.table
    superiors = [i for i in t.superiors | set(t.parents.values()) if i not in exclude]  # repro-lint: disable=RPR102 int IDs hash to themselves, so the union's order is a pure function of the ID population; sorted() would perturb the pinned tie-break order of the committed trajectory
    if not superiors:
        return None
    best_id: Optional[int] = None
    best_d = float("inf")
    for i in superiors:
        e = t.get(i)
        lvl = e.max_level if e is not None else 1
        d = _metric(view, i, lvl, req.target, euclid)
        if halving_criterion(d, d_here) and d < best_d:
            best_id, best_d = i, d
    if best_id is not None:
        return best_id
    # None halves the distance: highest-level superior.
    def level_of(i: int) -> int:
        e = t.get(i)
        return e.max_level if e is not None else 0

    return max(superiors, key=lambda i: (level_of(i), -view.config.space.distance(i, req.target)))


def _route_non_greedy(
    view: NodeView,
    req: LookupRequest,
    exclude: frozenset[int],
    euclid: bool,
    with_fallback: bool,
) -> Decision:
    space = view.config.space
    d_here = float(space.distance(view.ident, req.target))
    improving: List[int] = []
    for e in _full_candidates(view, exclude, target=req.target):
        if float(space.distance(e.ident, req.target)) < d_here:
            improving.append(e.ident)
            if not with_fallback:
                # NG: first improving candidate ends the search.
                return Decision.forward(e.ident)
            if len(improving) >= 4:  # bound the per-hop payload growth
                break

    if improving:
        # NGSA: forward to the first, carry the rest as alternates.
        return Decision.forward(improving[0], alternates=tuple(improving[1:]))

    if with_fallback:
        # Dead end: consume the nearest alternate accumulated upstream.
        live_alts = [a for a in req.alternates if a not in exclude]
        if live_alts:
            nxt = min(live_alts, key=lambda a: space.distance(a, req.target))
            rest = tuple(a for a in live_alts if a != nxt)
            return Decision.forward(nxt, alternates=rest)

    return _NOT_FOUND


# ---------------------------------------------------------------------------
# key-space routing (service layer)
# ---------------------------------------------------------------------------

def greedy_key_next_hop(
    view: NodeView,
    key_id: int,
    exclude: frozenset = frozenset(),
    improving_only: bool = True,
) -> Optional[int]:
    """Closest known next hop towards *key_id*, over the whole table.

    Key-space analogue of the NG rule used by the DHT and replicated-storage
    services: a key is owned by the node the greedy walk terminates on (no
    entry is closer to ``key_id`` than the current node), the TreeP version
    of consistent hashing's successor rule.  With ``improving_only`` (the
    default) only strictly-closer candidates qualify and ``None`` means this
    node is locally closest, i.e. responsible for the key; without it the
    best non-excluded candidate is returned even when it does not improve
    (the storage layer's sloppy-read fallback hop).
    """
    space = view.config.space
    best: Optional[int] = None
    if type(space) is IdSpace:  # stock 1-D space: inline |a - b|
        best_d = abs(view.ident - key_id) if improving_only else None
        for ident in view.table._entries:
            if ident in exclude:
                continue
            d = abs(ident - key_id)
            if best_d is None or d < best_d:
                best, best_d = ident, d
        return best
    best_d = space.distance(view.ident, key_id) if improving_only else None
    for e in view.table.candidates():
        if e.ident in exclude:
            continue
        d = space.distance(e.ident, key_id)
        if best_d is None or d < best_d:
            best, best_d = e.ident, d
    return best
