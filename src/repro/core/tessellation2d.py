"""2-D Voronoi tessellation — the paper's §VI future-work extension.

"We will also adapt the topology to a 2D space (using Voronoi
tessellations) to provide a higher degree of reliability and stability."

This module is that adaptation, as a working prototype: node IDs become
points in a 2-D torus-free square, each hierarchy level tessellates the
plane by nearest-site (Voronoi) assignment, over-full cells split by
promoting their best-capacity member, and a greedy geometric router walks
the structure.  The 1-D overlay remains the paper's evaluated system; the
2-D layer exists to quantify §VI's reliability claim (a 2-D cell has more
neighbouring cells than a 1-D segment's two, so lateral healing has more
options) — exercised by its test module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.capacity import NodeCapacity
from repro.core.config import TreePConfig

Point = Tuple[float, float]


@dataclass(frozen=True)
class PlaneSpace:
    """The unit-square 2-D ID space, scaled by *extent*."""

    extent: float = 1.0

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise ValueError(f"extent must be > 0, got {self.extent}")

    def contains(self, p: Point) -> bool:
        return 0 <= p[0] < self.extent and 0 <= p[1] < self.extent

    def distance(self, a: Point, b: Point) -> float:
        return float(np.hypot(a[0] - b[0], a[1] - b[1]))

    def validate(self, p: Point) -> Point:
        if not self.contains(p):
            raise ValueError(f"point {p} outside [0, {self.extent})^2")
        return p


def assign_points(space: PlaneSpace, count: int, rng: np.random.Generator) -> List[Point]:
    """Uniform random distinct points in the plane."""
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    pts: set[Point] = set()
    while len(pts) < count:
        xs = rng.uniform(0, space.extent, size=count - len(pts))
        ys = rng.uniform(0, space.extent, size=count - len(pts))
        for x, y in zip(xs, ys):
            pts.add((float(x), float(y)))
    return list(pts)[:count]


def nearest_site(space: PlaneSpace, sites: Sequence[Point], p: Point) -> Point:
    """The Voronoi owner of *p* among *sites* (ties by coordinate order)."""
    if not sites:
        raise ValueError("sites must be non-empty")
    arr = np.asarray(sites, dtype=float)
    q = np.asarray(p, dtype=float)
    d2 = ((arr - q) ** 2).sum(axis=1)
    # Deterministic ties: smallest distance, then lexicographic site.
    best = np.lexsort((arr[:, 1], arr[:, 0], d2))[0]
    return (float(arr[best, 0]), float(arr[best, 1]))


def tessellate(
    space: PlaneSpace, sites: Sequence[Point], points: Sequence[Point]
) -> Dict[Point, List[Point]]:
    """Partition *points* among the Voronoi cells of *sites* (vectorised)."""
    if not sites:
        raise ValueError("sites must be non-empty")
    out: Dict[Point, List[Point]] = {s: [] for s in sites}
    if not points:
        return out
    S = np.asarray(sites, dtype=float)
    P = np.asarray(points, dtype=float)
    # (n_points, n_sites) distance matrix; fine at the scales we run.
    d2 = ((P[:, None, :] - S[None, :, :]) ** 2).sum(axis=2)
    owners = np.argmin(d2, axis=1)
    for p, o in zip(points, owners):
        out[sites[int(o)]].append(p)
    return out


@dataclass
class Layout2D:
    """Steady-state 2-D hierarchy: levels of sites + Voronoi children."""

    levels: List[List[Point]]
    children: Dict[Tuple[Point, int], List[Point]]
    max_level: Dict[Point, int]
    parent: Dict[Point, Optional[Point]]
    nc: Dict[Point, int]

    @property
    def height(self) -> int:
        return len(self.levels) - 1

    def validate(self, space: PlaneSpace) -> None:
        for j in range(1, len(self.levels)):
            upper, lower = set(self.levels[j]), set(self.levels[j - 1])
            assert upper <= lower, f"level {j} not a subset of level {j-1}"
        for (p, j), kids in self.children.items():
            assert len(kids) <= self.nc[p], f"cell of {p} over-full"
            for k in kids:
                assert nearest_site(space, self.levels[j], k) == p


def build_layout_2d(
    points: Sequence[Point],
    capacities: Dict[Point, NodeCapacity],
    config: TreePConfig,
    space: Optional[PlaneSpace] = None,
) -> Layout2D:
    """2-D analogue of :func:`repro.core.hierarchy.build_layout`.

    Same promotion rule (best capacity in the neighbourhood), same B-tree
    overflow handling (promote the over-full cell's best child), Voronoi
    assignment instead of midpoint segments.
    """
    if len(points) < 2:
        raise ValueError("need at least 2 points")
    if len(set(points)) != len(points):
        raise ValueError("duplicate points")
    sp = space if space is not None else PlaneSpace()
    for p in points:
        sp.validate(p)

    scores = {p: capacities[p].score() for p in points}

    def effective_nc(p: Point) -> int:
        if config.nc_mode == "fixed":
            return config.nc_fixed
        return capacities[p].max_children(config.nc_floor, config.nc_ceiling)

    nc_of = {p: effective_nc(p) for p in points}

    levels: List[List[Point]] = [sorted(points)]
    children: Dict[Tuple[Point, int], List[Point]] = {}

    while len(levels[-1]) > 1 and len(levels) - 1 < config.max_height:
        lower = levels[-1]
        j = len(levels)
        # Seed parents: greedily take the best-scoring unclaimed point and
        # claim its nc nearest unclaimed peers (a 2-D sweep analogue).
        unclaimed = set(lower)
        seeds: List[Point] = []
        order = sorted(lower, key=lambda p: (-scores[p], p))
        arr = np.asarray(lower, dtype=float)
        for cand in order:
            if cand not in unclaimed:
                continue
            seeds.append(cand)
            q = np.asarray(cand, dtype=float)
            d2 = ((arr - q) ** 2).sum(axis=1)
            for idx in np.argsort(d2)[: nc_of[cand] + 1]:
                unclaimed.discard(lower[int(idx)])
            if not unclaimed:
                break
        if len(seeds) >= len(lower):
            seeds = [order[0]]

        # Voronoi assignment + overflow splitting.
        bus = sorted(set(seeds))
        for _ in range(len(lower) + 1):
            assignment = tessellate(sp, bus, lower)
            overfull = [
                (s, [m for m in members if m != s])
                for s, members in assignment.items()
                if len([m for m in members if m != s]) > nc_of[s]
            ]
            if not overfull:
                break
            for s, kids in overfull:
                promoted = max(kids, key=lambda p: (scores[p], p))
                if promoted not in bus:
                    bus.append(promoted)
            bus = sorted(set(bus))
        else:  # pragma: no cover - bounded by construction
            raise RuntimeError("2-D cell splitting did not converge")

        if len(bus) >= len(lower):
            break
        assignment = tessellate(sp, bus, lower)
        for s, members in assignment.items():
            children[(s, j)] = [m for m in members if m != s]
        levels.append(bus)

    max_level = {p: 0 for p in points}
    for j in range(1, len(levels)):
        for p in levels[j]:
            max_level[p] = j

    parent: Dict[Point, Optional[Point]] = {}
    for p in points:
        m = max_level[p]
        if m + 1 < len(levels):
            parent[p] = nearest_site(sp, levels[m + 1], p)
        else:
            parent[p] = None

    return Layout2D(levels=levels, children=children, max_level=max_level,
                    parent=parent, nc=nc_of)


def cell_neighbour_counts(
    space: PlaneSpace, layout: Layout2D, level: int, sample: int = 256,
    rng: Optional[np.random.Generator] = None,
) -> Dict[Point, int]:
    """Approximate Voronoi adjacency degree per cell at *level*.

    Two cells are neighbours when a densely-sampled segment between their
    sites crosses no third cell first — estimated by Monte-Carlo midpoint
    probing, enough to verify §VI's claim that 2-D cells have more
    neighbours than the 1-D bus's two.
    """
    sites = layout.levels[level]
    if len(sites) < 2:
        return {s: 0 for s in sites}
    r = rng if rng is not None else np.random.default_rng(0)
    neighbours: Dict[Point, set] = {s: set() for s in sites}
    for _ in range(sample):
        p = (float(r.uniform(0, space.extent)), float(r.uniform(0, space.extent)))
        arr = np.asarray(sites, dtype=float)
        q = np.asarray(p, dtype=float)
        d2 = ((arr - q) ** 2).sum(axis=1)
        a, b = np.argsort(d2)[:2]
        sa, sb = sites[int(a)], sites[int(b)]
        # The two nearest sites to a random point share a Voronoi edge in
        # that region; record the adjacency.
        neighbours[sa].add(sb)
        neighbours[sb].add(sa)
    return {s: len(v) for s, v in neighbours.items()}


def greedy_route_2d(
    space: PlaneSpace,
    layout: Layout2D,
    source: Point,
    target: Point,
    max_hops: int = 64,
) -> Tuple[bool, int, List[Point]]:
    """Tree routing on the 2-D structure: ascend, then descend by Voronoi.

    Ascend the parent chain until the current site's cell (at its top
    level) covers the target, then descend one level at a time to the
    target's cell owner — the 2-D analogue of the paper's halve-the-
    distance parent jump followed by tessellation descent.  A hop is
    counted whenever the message moves to a different site (a site present
    on several levels descends through itself for free, as in the 1-D
    overlay where a node is its own parent on lower buses).

    Returns (found, hops, path).  Never exceeds ``2 * height`` hops on an
    intact layout.
    """
    site = source
    lvl = layout.max_level[site]
    hops = 0
    path = [site]

    # Ascend until our cell covers the target.
    while nearest_site(space, layout.levels[lvl], target) != site:
        p = layout.parent.get(site)
        if p is None:
            return False, hops, path
        site = p
        lvl = layout.max_level[p]
        hops += 1
        path.append(site)
        if hops >= max_hops:
            return False, hops, path

    # Descend by per-level Voronoi ownership.
    while lvl > 0:
        nxt = nearest_site(space, layout.levels[lvl - 1], target)
        if nxt != site:
            hops += 1
            path.append(nxt)
            site = nxt
            if hops >= max_hops:
                return False, hops, path
        lvl -= 1

    return site == target, hops, path
