"""The 1-D ID space and ID assignment strategies.

TreeP maps every peer onto a 1-D space; the ID *is* the peer's virtual
location, and the hierarchy is a tessellation of that space (paper §III).
The space is the integer interval ``[0, extent)`` with the Euclidean metric
``d(a, b) = |a - b|`` — a line, not a ring: level buses have two endpoints,
exactly as in the paper's B+tree analogy.

Three assignment strategies from §III (and §VI future work):

* ``random`` — uniform random IDs (the paper's default experimental setup).
* ``hash`` — SHA-256 of an ``(ip, port)`` string, the "hash of the IP/Port
  numbers" option; statistically identical to random but stable across
  reconnects.
* ``balanced`` — the "preliminary search for an ID range" option: IDs are
  stratified so the tree starts balanced.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Literal, Optional, Sequence

import numpy as np

AssignStrategy = Literal["random", "hash", "balanced"]

#: Default ID-space size; 2**32 mirrors an IPv4-derived space.
DEFAULT_EXTENT = 2**32


@dataclass(frozen=True)
class IdSpace:
    """The 1-D coordinate space.

    Attributes
    ----------
    extent:
        Exclusive upper bound of the space; IDs live in ``[0, extent)``.
    """

    extent: int = DEFAULT_EXTENT

    def __post_init__(self) -> None:
        if self.extent < 4:
            raise ValueError(f"extent must be >= 4, got {self.extent}")

    def contains(self, ident: int) -> bool:
        return 0 <= ident < self.extent

    def distance(self, a: int, b: int) -> int:
        """Euclidean distance on the line: ``|a - b|``."""
        return abs(a - b)

    def midpoint(self, a: int, b: int) -> int:
        """Integer midpoint, used for tessellation cell boundaries."""
        return (a + b) // 2

    def validate(self, ident: int) -> int:
        if not self.contains(ident):
            raise ValueError(f"id {ident} outside [0, {self.extent})")
        return ident


def _hash_id(space: IdSpace, host: str, port: int) -> int:
    digest = hashlib.sha256(f"{host}:{port}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % space.extent


def assign_ids(
    space: IdSpace,
    count: int,
    rng: np.random.Generator,
    strategy: AssignStrategy = "random",
    hosts: Optional[Sequence[tuple[str, int]]] = None,
) -> List[int]:
    """Draw *count* distinct IDs with the given strategy.

    Parameters
    ----------
    space:
        Target ID space.
    count:
        Number of distinct IDs required.
    rng:
        Randomness source (``random`` and ``balanced`` strategies).
    strategy:
        One of ``random``, ``hash``, ``balanced``.
    hosts:
        Required for ``hash``: the ``(ip, port)`` pairs to hash.  Collisions
        are resolved by linear probing in the space (deterministic).

    Returns
    -------
    list[int]
        ``count`` distinct IDs, in assignment order (NOT sorted).
    """
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    if count > space.extent // 2:
        raise ValueError(
            f"count {count} too large for space extent {space.extent}"
        )

    if strategy == "random":
        # Sample without replacement; for huge spaces rejection is cheaper
        # than permutation, so draw with a margin and deduplicate.
        seen: set[int] = set()
        out: List[int] = []
        while len(out) < count:
            draw = rng.integers(0, space.extent, size=count - len(out) + 16)
            for v in draw:
                iv = int(v)
                if iv not in seen:
                    seen.add(iv)
                    out.append(iv)
                    if len(out) == count:
                        break
        return out

    if strategy == "hash":
        if hosts is None or len(hosts) < count:
            raise ValueError("hash strategy requires >= count (ip, port) pairs")
        seen = set()
        out = []
        for host, port in hosts[:count]:
            ident = _hash_id(space, host, port)
            while ident in seen:  # linear probe on collision
                ident = (ident + 1) % space.extent
            seen.add(ident)
            out.append(ident)
        return out

    if strategy == "balanced":
        # Stratified: one ID uniform in each of `count` equal strata, then
        # shuffled so arrival order is not sorted.
        bounds = np.linspace(0, space.extent, count + 1, dtype=np.int64)
        ids = [
            int(rng.integers(bounds[i], max(bounds[i] + 1, bounds[i + 1])))
            for i in range(count)
        ]
        # Strata are disjoint except possibly at shared bounds; dedupe safely.
        seen = set()
        out = []
        for ident in ids:
            while ident in seen:
                ident = (ident + 1) % space.extent
            seen.add(ident)
            out.append(ident)
        rng.shuffle(out)  # type: ignore[arg-type]
        return [int(v) for v in out]

    raise ValueError(f"unknown strategy {strategy!r}")
