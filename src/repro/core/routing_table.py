"""The per-node routing state: the six tables of §III.c.

Every entry is a ``(ID, IP, Port)`` tuple in the paper; here the overlay ID
doubles as the network address, so an entry is an ID plus *peer metadata*
(maximum level, capacity score, children bound) and a **timestamp**.  Per
§III.c, the timestamp is reset on every active communication with the peer
and the entry is deleted after expiry.

The six tables:

1. **level-0 table** — level-0 neighbours (every node has one).
2. **level-i tables** (``i > 0``) — direct and indirect (neighbour-of-
   neighbour) peers on the node's level-``i`` bus, plus the level-``i``
   parents of its level-0 neighbours.
3. **children table** — own children plus the children of direct bus
   neighbours (parents only).
4. **level-1 parent** — every node has one.
5. **superior node list** — ancestors (Figure 2's red chain) and the direct
   neighbours of the immediate parent; cheap replication for robustness.

(The paper counts the per-level parents as the sixth table; here parents at
every level the node belongs to live in :attr:`RoutingTable.parents`.)

One shared :class:`Entry` store backs all tables so a keep-alive from a peer
refreshes every role it appears under at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple


@dataclass(slots=True)
class Entry:
    """What a node knows about one peer."""

    ident: int
    max_level: int = 0
    score: float = 1.0
    nc: int = 4
    last_seen: float = 0.0

    def touch(self, now: float) -> None:
        if now > self.last_seen:
            self.last_seen = now

    def as_tuple(self) -> Tuple[int, int, float, int, float]:
        return (self.ident, self.max_level, self.score, self.nc, self.last_seen)


class _RoleSet(set):
    """A ``set`` that bumps its owning table's :attr:`RoutingTable.version`
    on every *effective* mutation.

    The role sets are mutated directly all over the protocol engine
    (``table.level0.discard(...)``, ``table.children.discard(...)`` …), so
    versioning must live in the container rather than in ``RoutingTable``
    methods — otherwise any direct mutation would silently invalidate the
    candidate-order caches the router keeps per version (see
    :func:`repro.core.lookup._ordered_candidates`).
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "RoutingTable", iterable: Iterable[int] = ()) -> None:
        super().__init__(iterable)
        self._owner = owner

    # -- effective mutations bump; no-op mutations don't --------------------
    def add(self, item: int) -> None:
        if item not in self:
            self._owner._version += 1
            set.add(self, item)

    def discard(self, item: int) -> None:
        if item in self:
            self._owner._version += 1
            set.discard(self, item)

    def remove(self, item: int) -> None:
        self._owner._version += 1
        set.remove(self, item)

    def pop(self) -> int:
        self._owner._version += 1
        return set.pop(self)

    def clear(self) -> None:
        if self:
            self._owner._version += 1
        set.clear(self)

    # -- bulk mutations bump unconditionally (over-invalidation is safe) ----
    def update(self, *others) -> None:
        self._owner._version += 1
        set.update(self, *others)

    def __ior__(self, other):
        self._owner._version += 1
        return set.__ior__(self, other)

    def difference_update(self, *others) -> None:
        self._owner._version += 1
        set.difference_update(self, *others)

    def __isub__(self, other):
        self._owner._version += 1
        return set.__isub__(self, other)

    def intersection_update(self, *others) -> None:
        self._owner._version += 1
        set.intersection_update(self, *others)

    def __iand__(self, other):
        self._owner._version += 1
        return set.__iand__(self, other)

    def symmetric_difference_update(self, other) -> None:
        self._owner._version += 1
        set.symmetric_difference_update(self, other)

    def __ixor__(self, other):
        self._owner._version += 1
        return set.__ixor__(self, other)


class _LevelTables(dict):
    """``level -> _RoleSet`` mapping that keeps assignments versioned.

    The repair policies install whole fresh buses at once
    (``table.level_tables[lvl] = {...}``); wrapping the assigned set keeps
    later in-place mutations versioned too.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "RoutingTable") -> None:
        super().__init__()
        self._owner = owner

    def __setitem__(self, level: int, ids: Iterable[int]) -> None:
        self._owner._version += 1
        dict.__setitem__(self, level, _RoleSet(self._owner, ids))

    def setdefault(self, level: int, default: Iterable[int] = ()) -> "_RoleSet":
        got = dict.get(self, level)
        if got is None:
            got = _RoleSet(self._owner, default)
            self._owner._version += 1
            dict.__setitem__(self, level, got)
        return got

    def __delitem__(self, level: int) -> None:
        if level in self:
            self._owner._version += 1
        dict.__delitem__(self, level)

    def pop(self, level: int, *default):
        if level in self:
            self._owner._version += 1
        return dict.pop(self, level, *default)

    def clear(self) -> None:
        if self:
            self._owner._version += 1
        dict.clear(self)

    def update(self, *args, **kwargs) -> None:
        for mapping in (*args, kwargs):
            items = mapping.items() if hasattr(mapping, "items") else mapping
            for level, ids in items:
                self[level] = ids


class _ParentMap(dict):
    """``level -> parent id`` mapping with versioned writes."""

    __slots__ = ("_owner",)

    def __init__(self, owner: "RoutingTable") -> None:
        super().__init__()
        self._owner = owner

    def __setitem__(self, level: int, ident: int) -> None:
        if dict.get(self, level) != ident:
            self._owner._version += 1
        dict.__setitem__(self, level, ident)

    def __delitem__(self, level: int) -> None:
        if level in self:
            self._owner._version += 1
        dict.__delitem__(self, level)

    def pop(self, level: int, *default):
        if level in self:
            self._owner._version += 1
        return dict.pop(self, level, *default)

    def clear(self) -> None:
        if self:
            self._owner._version += 1
        dict.clear(self)

    def update(self, *args, **kwargs) -> None:
        self._owner._version += 1
        dict.update(self, *args, **kwargs)

    def setdefault(self, level: int, default: int = None):  # pragma: no cover
        if level not in self:
            self._owner._version += 1
        return dict.setdefault(self, level, default)


class RoutingTable:
    """All routing state of one TreeP node.

    The table never stores the owning node itself.  Mutators are idempotent;
    `expire` is the only method that removes entries besides explicit
    `forget`.
    """

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._entries: Dict[int, Entry] = {}
        #: Monotonic counter bumped by every role-membership change; the
        #: router's per-node candidate-order caches key on it (any hit at
        #: an unchanged version is guaranteed to see the same role sets).
        self._version: int = 0
        #: Version-keyed memo space for derived views of this table
        #: (see :mod:`repro.core.lookup`): name -> (version, value).
        self.cache: Dict[str, Tuple[int, Any]] = {}
        #: level-0 neighbours (table 1).
        self.level0: Set[int] = _RoleSet(self)
        #: indirect level-0 knowledge — neighbours of neighbours, the
        #: replication that lets a node relink when a direct link dies.
        self.level0_indirect: Set[int] = _RoleSet(self)
        #: per-level bus neighbourhood (table 2): level -> ids.
        self.level_tables: Dict[int, Set[int]] = _LevelTables(self)
        #: own children (table 3, first half).
        self.children: Set[int] = _RoleSet(self)
        #: children of direct bus neighbours (table 3, second half).
        self.neighbour_children: Set[int] = _RoleSet(self)
        #: parent at each level this node belongs to (tables 4 + per-level).
        self.parents: Dict[int, int] = _ParentMap(self)
        #: ancestors + parent's direct neighbours (table 5).
        self.superiors: Set[int] = _RoleSet(self)

    @property
    def version(self) -> int:
        """Role-membership version (bumps on any add/remove in any table)."""
        return self._version

    #: Role attributes whose rebinding must stay versioned (the repair
    #: policies rebuild whole roles by assignment: ``t.superiors = fresh``).
    _WRAPPED_ROLES = frozenset((
        "level0", "level0_indirect", "children", "neighbour_children",
        "superiors"))

    def __setattr__(self, name: str, value: Any) -> None:
        if name in RoutingTable._WRAPPED_ROLES and not isinstance(value, _RoleSet):
            self._version += 1
            value = _RoleSet(self, value)
        elif name == "level_tables" and not isinstance(value, _LevelTables):
            wrapped = _LevelTables(self)
            wrapped.update(value)
            self._version += 1
            value = wrapped
        elif name == "parents" and not isinstance(value, _ParentMap):
            wrapped = _ParentMap(self)
            dict.update(wrapped, value)
            self._version += 1
            value = wrapped
        object.__setattr__(self, name, value)

    # ----------------------------------------------------------- entry CRUD
    def upsert(
        self,
        ident: int,
        now: float,
        max_level: Optional[int] = None,
        score: Optional[float] = None,
        nc: Optional[int] = None,
    ) -> Entry:
        """Create or refresh the metadata entry for *ident*."""
        if ident == self.owner:
            raise ValueError("a node never stores itself in its routing table")
        e = self._entries.get(ident)
        if e is None:
            e = Entry(ident=ident, last_seen=now)
            self._entries[ident] = e
        e.touch(now)
        if max_level is not None and max_level != e.max_level:
            # The router's candidate caches key on the version and memoise
            # (ident, max_level) pairs — a level change via gossip/keep-alive
            # metadata must invalidate them exactly like a role change.
            self._version += 1
            e.max_level = max_level
        if score is not None:
            e.score = score
        if nc is not None:
            e.nc = nc
        return e

    def get(self, ident: int) -> Optional[Entry]:
        return self._entries.get(ident)

    def knows(self, ident: int) -> bool:
        """§III.f Fig. 3: "target X is in the routing table"."""
        return ident in self._entries

    def touch(self, ident: int, now: float) -> None:
        e = self._entries.get(ident)
        if e is not None:
            e.touch(now)

    def forget(self, ident: int) -> None:
        """Drop *ident* from every table (e.g. a detected-dead peer)."""
        self._entries.pop(ident, None)
        self.level0.discard(ident)
        self.level0_indirect.discard(ident)
        for ids in self.level_tables.values():
            ids.discard(ident)
        self.children.discard(ident)
        self.neighbour_children.discard(ident)
        self.superiors.discard(ident)
        for lvl in [l for l, p in self.parents.items() if p == ident]:
            del self.parents[lvl]

    # ------------------------------------------------------------ role sets
    def add_level0(self, ident: int, now: float, **meta: float) -> None:
        self.upsert(ident, now, **meta)  # type: ignore[arg-type]
        self.level0.add(ident)

    def add_level0_indirect(self, ident: int, now: float, **meta: float) -> None:
        self.upsert(ident, now, **meta)  # type: ignore[arg-type]
        self.level0_indirect.add(ident)

    def add_level(self, level: int, ident: int, now: float, **meta: float) -> None:
        if level <= 0:
            raise ValueError("use add_level0 for level 0")
        self.upsert(ident, now, **meta)  # type: ignore[arg-type]
        self.level_tables.setdefault(level, set()).add(ident)

    def add_child(self, ident: int, now: float, **meta: float) -> None:
        self.upsert(ident, now, **meta)  # type: ignore[arg-type]
        self.children.add(ident)

    def add_neighbour_child(self, ident: int, now: float, **meta: float) -> None:
        self.upsert(ident, now, **meta)  # type: ignore[arg-type]
        self.neighbour_children.add(ident)

    def set_parent(self, level: int, ident: int, now: float, **meta: float) -> None:
        """Record *ident* as the parent seen from level ``level - 1``."""
        if level <= 0:
            raise ValueError("parents exist at level >= 1")
        self.upsert(ident, now, **meta)  # type: ignore[arg-type]
        self.parents[level] = ident

    def add_superior(self, ident: int, now: float, **meta: float) -> None:
        self.upsert(ident, now, **meta)  # type: ignore[arg-type]
        self.superiors.add(ident)

    # --------------------------------------------------------------- expiry
    def expire(self, now: float, entry_ttl: float) -> List[int]:
        """Delete entries not refreshed within *entry_ttl*; return their ids."""
        stale = [i for i, e in self._entries.items() if now - e.last_seen > entry_ttl]
        for ident in stale:
            self.forget(ident)
        return stale

    # -------------------------------------------------------------- queries
    def level1_parent(self) -> Optional[int]:
        return self.parents.get(1)

    def all_known(self) -> List[int]:
        return list(self._entries)

    def candidates(self) -> List[Entry]:
        """Every peer usable as a next hop, deduplicated."""
        return list(self._entries.values())

    def neighbours_at(self, level: int) -> Set[int]:
        if level == 0:
            return set(self.level0)
        return set(self.level_tables.get(level, ()))

    def size(self) -> int:
        """Total distinct entries — the quantity §III.e bounds."""
        return len(self._entries)

    def active_connections(self) -> Set[int]:
        """Peers with an actively maintained edge (§III.a/e).

        Level-0 neighbours, same-level bus neighbours, the per-level
        parents, and own children.  Superiors and neighbour-children are
        *replicated data*, not maintained edges.
        """
        out: Set[int] = set(self.level0)
        for ids in self.level_tables.values():
            out |= ids
        out |= set(self.parents.values())
        out |= self.children
        return out

    def roles_of(self, ident: int) -> Set[str]:
        """Role tags *ident* currently holds in this table (diagnostics)."""
        roles: Set[str] = set()
        if ident in self.level0:
            roles.add("level0")
        if ident in self.level0_indirect:
            roles.add("level0-indirect")
        for lvl, ids in self.level_tables.items():
            if ident in ids:
                roles.add(f"level{lvl}")
        if ident in self.children:
            roles.add("child")
        if ident in self.neighbour_children:
            roles.add("neighbour-child")
        if ident in self.parents.values():
            roles.add("parent")
        if ident in self.superiors:
            roles.add("superior")
        return roles

    def trim_to_roles(self) -> int:
        """Expire every entry that no longer backs any table role.

        This is the bounded-knowledge rule of §III.c/e: the routing table
        holds the six categories and nothing else, so its size obeys the
        paper's formulas instead of accumulating gossip indefinitely.
        Returns the number of entries dropped.
        """
        keep: Set[int] = set(self.level0) | self.level0_indirect
        for ids in self.level_tables.values():
            keep |= ids
        keep |= self.children | self.neighbour_children
        keep |= set(self.parents.values())
        keep |= self.superiors
        drop = [i for i in self._entries if i not in keep]
        for i in drop:
            del self._entries[i]
        return len(drop)

    # ---------------------------------------------------------------- delta
    def delta_since(self, since: float) -> List[Tuple[int, int, float, int, float]]:
        """Entries refreshed after *since* — §III.d's out-of-date-only sync."""
        return [e.as_tuple() for e in self._entries.values() if e.last_seen > since]

    def merge_delta(
        self, tuples: Iterable[Tuple[int, int, float, int, float]], now: float
    ) -> int:
        """Fold a peer's delta into the metadata store.

        Only metadata is merged — roles (neighbour/child/parent) are
        assigned by protocol logic, not gossip.  Returns entries updated.
        """
        n = 0
        for ident, max_level, score, nc, last_seen in tuples:
            if ident == self.owner:
                continue
            e = self._entries.get(ident)
            if e is None or last_seen > e.last_seen:
                e = self.upsert(ident, min(last_seen, now), max_level=max_level,
                                score=score, nc=nc)
                n += 1
        return n
