"""Self-healing: what the paper's maintenance converges to after failures.

TreeP's robustness (§III.c/d) comes from cheap replication: every node also
knows its *indirect* neighbours (neighbours of neighbours), the children of
its bus neighbours, and its parent's neighbours (superior list).  Entries are
timestamped; when a peer dies, its keep-alives stop, the timestamps lapse and
every entry pointing at it is deleted — so at measurement time dead peers
are *known dead* and the router never selects them.  Failures are therefore
**structural**: a lookup fails when no surviving entry can make progress
(a region's parent chain is gone, or the network has partitioned), which is
exactly the behaviour §IV reports (≈10% failed lookups at 30% dead nodes,
rising as the topology disintegrates).

Two ways to run the healing between failure bursts:

* **Protocol mode** — :class:`~repro.core.maintenance.MaintenanceManager`
  expires entries as keep-alives stop arriving and calls
  :func:`relink_node`; gossip happens through the delta exchange.
  Message-accurate but needs many simulated seconds per step.
* **Converged mode** — :func:`apply_failure_step` applies the *fixed point*
  of that process directly, under a :class:`RepairPolicy` that says which
  healing mechanisms the maintenance window is long enough to complete.
  The experiment harness uses this so sweeps over thousands of nodes stay
  fast; an integration test asserts protocol mode converges to an
  equivalent table state on small networks.

The paper's sweep deliberately stresses the overlay: failures accumulate
with no repopulation and *no new promotions* — the surviving hierarchy only
relinks laterally.  :data:`PAPER_POLICY` encodes that; the ablation benches
flip individual knobs (e.g. parent re-adoption) to quantify each mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import TreePNode
    from repro.core.treep import TreePNetwork


@dataclass(frozen=True)
class RepairPolicy:
    """Which healing mechanisms complete within one maintenance window.

    Attributes
    ----------
    relink_level0:
        Survivors re-establish level-0 left/right links to the nearest peer
        they still know (uses the indirect-neighbour replication).
    relink_buses:
        Same lateral relinking on every level bus.
    adopt_parents:
        Orphans re-attach to the nearest surviving peer one level up.  The
        paper's stress sweep leaves this to the (disabled) promotion
        machinery, so the default paper policy turns it off.
    refresh_neighbour_children:
        Bus neighbours re-exchange children lists, letting an uncle route
        down into an orphaned cell.
    gossip_rounds:
        How many §III.d exchange rounds fit in the window (spreads
        indirect-neighbour knowledge one hop per round).
    """

    relink_level0: bool = True
    relink_buses: bool = True
    adopt_parents: bool = False
    refresh_neighbour_children: bool = True
    gossip_rounds: int = 1


#: The maintenance the paper's sweep cadence allows: lateral healing only.
PAPER_POLICY = RepairPolicy()

#: Everything on — used by the churn example and the ablation benches.
FULL_POLICY = RepairPolicy(adopt_parents=True, gossip_rounds=2)

#: Nothing but entry expiry — lower bound for ablations.
PURGE_ONLY_POLICY = RepairPolicy(
    relink_level0=False,
    relink_buses=False,
    adopt_parents=False,
    refresh_neighbour_children=False,
    gossip_rounds=0,
)


# --------------------------------------------------------------------------
# node-local relinking (used by both modes)
# --------------------------------------------------------------------------

def _nearest_sides(ids: Iterable[int], around: int) -> tuple[Optional[int], Optional[int]]:
    """Nearest known ID strictly below and strictly above *around*."""
    left: Optional[int] = None
    right: Optional[int] = None
    for i in ids:
        if i < around and (left is None or i > left):
            left = i
        elif i > around and (right is None or i < right):
            right = i
    return left, right


def relink_node(node: "TreePNode", policy: RepairPolicy = FULL_POLICY) -> None:
    """Recompute the node's maintained links from surviving knowledge.

    Strictly node-local: candidates are the entries still present in the
    node's own routing table (dead peers were expired by the keep-alive
    TTL before this runs).
    """
    t = node.table
    now = node.sim.now

    known = [(e.ident, e.max_level) for e in t.candidates()]

    if policy.relink_level0:
        level0_ids = [i for i, _ in known]
        left, right = _nearest_sides(level0_ids, node.ident)
        t.level0 = {i for i in (left, right) if i is not None}
        # Keep the paper's minimum-two-connections rule at bus endpoints.
        if len(t.level0) < 2:
            same_side = sorted(
                (i for i in level0_ids if i not in t.level0),
                key=lambda i: abs(i - node.ident),
            )
            for i in same_side[: 2 - len(t.level0)]:
                t.level0.add(i)

    if policy.relink_buses:
        for lvl in range(1, node.max_level + 1):
            bus_ids = [i for i, m in known if m >= lvl and i != node.ident]
            l, r = _nearest_sides(bus_ids, node.ident)
            t.level_tables[lvl] = {i for i in (l, r) if i is not None}

    if policy.adopt_parents:
        want_level = node.max_level + 1
        if t.parents.get(want_level) is None:
            ups = [i for i, m in known if m >= want_level]
            if ups:
                new_parent = min(ups, key=lambda i: abs(i - node.ident))
                t.set_parent(want_level, new_parent, now)


def _prune_children(node: "TreePNode") -> None:
    """Drop children no longer present in the table (expired)."""
    t = node.table
    for lvl, kids in list(node.children_by_level.items()):
        node.children_by_level[lvl] = [k for k in kids if t.get(k) is not None]


# --------------------------------------------------------------------------
# converged-mode primitives (harness use)
# --------------------------------------------------------------------------

def purge_dead(net: "TreePNetwork", newly_dead: Optional[Iterable[int]] = None) -> int:
    """Delete every entry pointing at a down peer from every live table.

    Equivalent to letting every keep-alive TTL lapse; returns entries
    removed.  Pass *newly_dead* to restrict the scan to peers that failed
    since the last purge (gossip never re-imports dead peers, so
    incremental purging is exact and much cheaper on large sweeps).
    """
    removed = 0
    if newly_dead is not None:
        dead = {i for i in newly_dead if not net.network.is_up(i)}
    else:
        dead = {i for i in net.ids if not net.network.is_up(i)}
    if not dead:
        return 0
    for ident, node in net.nodes.items():
        if ident in dead:
            continue
        for d in dead:
            if node.table.get(d) is not None:
                node.table.forget(d)
                removed += 1
        _prune_children(node)
    return removed


def gossip_round(net: "TreePNetwork", policy: RepairPolicy = FULL_POLICY) -> None:
    """One §III.d exchange round along surviving maintained links.

    Each live node imports, into the matching table role:

    * from its level-0 links: the peers' own level-0 links (indirect
      neighbour knowledge);
    * from its bus links at level ``i``: the peers' bus links (indirect
      same-level) and — when the policy allows — the peers' children
      (the neighbour-children table);
    * from its parent (when one survives): the parent's ancestors and bus
      links (the superior-node list of Figure 2).

    Entries backing no role afterwards are trimmed, keeping table sizes
    within the §III.e bounds instead of accumulating gossip forever.
    """
    now = net.sim.now
    # Snapshot first so information moves one hop per round, matching one
    # keep-alive exchange, not transitively within a round.
    snapshot: dict[int, tuple] = {}
    for ident, node in net.nodes.items():
        if not net.network.is_up(ident):
            continue
        t = node.table
        meta = {}
        for i in t.all_known():
            e = t.get(i)
            meta[i] = (e.max_level, e.score, e.nc)  # type: ignore[union-attr]
        snapshot[ident] = (
            set(t.level0),
            {lvl: set(ids) for lvl, ids in t.level_tables.items()},
            {lvl: list(kids) for lvl, kids in node.children_by_level.items()},
            dict(t.parents),
            set(t.superiors),
            (node.max_level, node.score, node.nc),
            meta,
        )

    for ident, snap in snapshot.items():
        node = net.nodes[ident]
        t = node.table
        my_level0, my_buses, _, my_parents, _, _, _ = snap

        def import_entry(i: int, src_meta: dict, adder: Callable) -> None:
            if i == ident:
                return
            m = src_meta.get(i)
            if m is None:
                adder(i, now)
            else:
                adder(i, now, max_level=m[0], score=m[1], nc=m[2])

        # Level-0 exchange: refresh the link, learn the peer's links.
        new_indirect: set[int] = set()
        for peer in my_level0:
            ps = snapshot.get(peer)
            if ps is None:
                continue
            p_level0, _, _, _, _, pme, pmeta = ps
            t.add_level0(peer, now, max_level=pme[0], score=pme[1], nc=pme[2])
            for i in p_level0:
                if i != ident:
                    import_entry(i, pmeta, t.add_level0_indirect)
                    new_indirect.add(i)
        if new_indirect:
            t.level0_indirect = new_indirect - t.level0

        # Bus exchanges per level.  Each level table is *rebuilt* as direct
        # links + one-hop indirect (the peers' own links): like the other
        # replicated roles it must not accumulate transitively across
        # rounds, or table sizes would leave the §III.e bounds.
        fresh_nc: set[int] = set()
        any_bus_exchange = False
        for lvl, bus_entries in my_buses.items():
            # Exchange only on *maintained* connections: the nearest bus
            # neighbour on each side.  Everything else in the level table
            # is indirect knowledge, not an active edge (§III.a).
            l, r = _nearest_sides(bus_entries, ident)
            bus_links = {i for i in (l, r) if i is not None}
            fresh_level: set[int] = set()
            exchanged_here = False
            for peer in bus_links:
                ps = snapshot.get(peer)
                if ps is None:
                    continue
                exchanged_here = True
                any_bus_exchange = True
                _, p_buses, p_children, _, _, pme, pmeta = ps
                t.add_level(lvl, peer, now, max_level=pme[0], score=pme[1], nc=pme[2])
                fresh_level.add(peer)
                for i in p_buses.get(lvl, ()):
                    if i != ident:
                        import_entry(i, pmeta, lambda j, n, **m: t.add_level(lvl, j, n, **m))
                        fresh_level.add(i)
                if policy.refresh_neighbour_children:
                    for k in p_children.get(lvl, ()):
                        if k != ident:
                            import_entry(k, pmeta, t.add_neighbour_child)
                            fresh_nc.add(k)
            if exchanged_here:
                t.level_tables[lvl] = fresh_level
        if policy.refresh_neighbour_children and any_bus_exchange:
            t.neighbour_children = fresh_nc

        # Parent exchange: ancestors + parent's bus links -> superiors.
        p = my_parents.get(node.max_level + 1)
        ps = snapshot.get(p) if p is not None else None
        if ps is not None:
            _, p_buses, _, p_parents, p_superiors, pme, pmeta = ps
            new_sup: set[int] = set()
            for group in (p_parents.values(), p_superiors, p_buses.get(pme[0], ())):
                for i in group:
                    if i != ident:
                        import_entry(i, pmeta, t.add_superior)
                        new_sup.add(i)
            t.superiors = new_sup

        t.trim_to_roles()


def _sync_children(net: "TreePNetwork") -> None:
    """Make parent/child views consistent after adoptions (ChildReport)."""
    now = net.sim.now
    for ident, node in net.nodes.items():
        if not net.network.is_up(ident):
            continue
        lvl = node.max_level + 1
        p = node.table.parents.get(lvl)
        if p is None or not net.network.is_up(p):
            continue
        parent = net.nodes.get(p)
        if parent is None or parent.max_level < lvl:
            continue
        parent.table.add_child(ident, now, max_level=node.max_level,
                               score=node.score, nc=node.nc)
        kids = parent.children_by_level.setdefault(lvl, [])
        if ident not in kids:
            kids.append(ident)
            kids.sort()


# --------------------------------------------------------------------------
# converged-mode drivers
# --------------------------------------------------------------------------

def _symmetrize_links(net: "TreePNetwork") -> None:
    """Make relinked connections mutual.

    Adopting a link starts with a Hello handshake (§III.d first contact),
    so the adopted peer always learns the adopter: if A linked B at level
    0, B gains A's entry and — both being each other's nearest known —
    links back on its next relink pass.
    """
    now = net.sim.now
    up = net.network.is_up
    for ident, node in net.nodes.items():
        if not up(ident):
            continue
        for peer in list(node.table.level0):
            pn = net.nodes.get(peer)
            if pn is not None and up(peer):
                pn.table.add_level0_indirect(ident, now, max_level=node.max_level,
                                             score=node.score, nc=node.nc)
        for lvl, ids in node.table.level_tables.items():
            for peer in list(ids):
                pn = net.nodes.get(peer)
                if pn is not None and up(peer) and pn.max_level >= lvl:
                    pn.table.add_level(lvl, ident, now, max_level=node.max_level,
                                       score=node.score, nc=node.nc)


def apply_failure_step(
    net: "TreePNetwork",
    newly_failed: Iterable[int] = (),
    policy: RepairPolicy = PAPER_POLICY,
) -> None:
    """One step of the paper's sweep: expire the victims, heal per *policy*."""
    purge_dead(net, newly_failed)
    up = net.network.is_up
    live_nodes = [n for i, n in net.nodes.items() if up(i)]
    for node in live_nodes:
        relink_node(node, policy)
    _symmetrize_links(net)
    for node in live_nodes:
        relink_node(node, policy)
    for _ in range(max(0, policy.gossip_rounds)):
        gossip_round(net, policy)
        for node in live_nodes:
            relink_node(node, policy)
    if policy.adopt_parents:
        _sync_children(net)


def converge(
    net: "TreePNetwork",
    gossip_rounds: int = 2,
    newly_failed: Optional[Iterable[int]] = None,
    policy: Optional[RepairPolicy] = None,
) -> None:
    """Full healing to the maintenance fixed point (everything enabled)."""
    pol = policy if policy is not None else RepairPolicy(
        adopt_parents=True, gossip_rounds=gossip_rounds
    )
    apply_failure_step(net, newly_failed if newly_failed is not None else (), pol)