"""Heterogeneous node capability model.

The paper promotes nodes on "CPU, Memory, Bandwidth, network load, systems
load, Uptime and Storage Space" (§III.a) and sizes election countdowns and
the variable maximum-children parameter from the same characteristics.  This
module defines the capability vector, the scalar **capacity score** those
mechanisms consume, and samplers producing realistic heterogeneous
populations (log-normal bandwidth, discrete CPU classes, Pareto uptime — the
shapes reported by the P2P measurement studies the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

import numpy as np


@dataclass(frozen=True)
class NodeCapacity:
    """Static capabilities plus slowly-varying load of one peer.

    Units are normalised: ``cpu`` in abstract cores, ``memory_gb`` /
    ``storage_gb`` in GB, ``bandwidth_mbps`` in Mbit/s, ``uptime_hours`` the
    node's historical mean session length, loads in ``[0, 1]``.
    """

    cpu: float = 1.0
    memory_gb: float = 1.0
    bandwidth_mbps: float = 10.0
    storage_gb: float = 50.0
    uptime_hours: float = 10.0
    cpu_load: float = 0.0
    net_load: float = 0.0

    def __post_init__(self) -> None:
        if min(self.cpu, self.memory_gb, self.bandwidth_mbps, self.storage_gb) <= 0:
            raise ValueError("cpu, memory, bandwidth and storage must be > 0")
        if self.uptime_hours <= 0:
            raise ValueError("uptime_hours must be > 0")
        for name in ("cpu_load", "net_load"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")

    # ------------------------------------------------------------- scoring
    @property
    def effective_cpu(self) -> float:
        """CPU shares actually available: capacity minus current load.

        The one definition the load balancer, scheduler matchmaker and
        workers all size assignments against.
        """
        return self.cpu * (1.0 - self.cpu_load)

    def score(self) -> float:
        """Scalar capacity in ``(0, +inf)``; higher is better.

        Geometric mean of log-scaled resources, discounted by current load.
        The geometric mean keeps any single huge resource from dominating
        (a fat pipe on a loaded CPU should not win every election).
        """
        resources = np.array(
            [
                np.log1p(self.cpu),
                np.log1p(self.memory_gb),
                np.log1p(self.bandwidth_mbps),
                np.log1p(self.storage_gb),
                np.log1p(self.uptime_hours),
            ]
        )
        gmean = float(np.exp(np.mean(np.log(resources + 1e-9))))
        load_penalty = (1.0 - 0.5 * self.cpu_load) * (1.0 - 0.5 * self.net_load)
        return gmean * load_penalty

    def with_load(self, cpu_load: float | None = None, net_load: float | None = None) -> "NodeCapacity":
        """Copy with updated load figures."""
        return replace(
            self,
            cpu_load=self.cpu_load if cpu_load is None else cpu_load,
            net_load=self.net_load if net_load is None else net_load,
        )

    # ------------------------------------------------- protocol quantities
    def max_children(self, floor: int = 2, ceiling: int = 8, pivot: float = 2.2) -> int:
        """Variable-``nc``: children this node can parent (paper case 2).

        Maps the score onto ``[floor, ceiling]`` with *pivot* the score that
        earns the midpoint.  Monotone in the score.
        """
        if floor < 2:
            raise ValueError("a parent must support at least 2 children")
        if ceiling < floor:
            raise ValueError(f"ceiling {ceiling} < floor {floor}")
        s = self.score()
        frac = s / (s + pivot)  # in (0, 1), 0.5 at s == pivot
        return int(round(floor + frac * (ceiling - floor)))

    def promotion_countdown(self, base: float = 1.0, rng: np.random.Generator | None = None) -> float:
        """Election countdown: *higher* capacity → *shorter* countdown (§III.b).

        A small random jitter (up to 10%) breaks exact-score ties without
        materially changing the ordering.
        """
        jitter = 1.0 + (0.1 * float(rng.random()) if rng is not None else 0.0)
        return base * jitter / (1.0 + self.score())

    def demotion_countdown(self, base: float = 1.0, rng: np.random.Generator | None = None) -> float:
        """Under-filled-parent countdown: *higher* capacity → *longer* wait.

        Powerful parents linger, giving the system time to route new
        children to them before they abdicate (§III.b).
        """
        jitter = 1.0 + (0.1 * float(rng.random()) if rng is not None else 0.0)
        return base * jitter * (1.0 + self.score())


class CapacityDistribution:
    """Sampler of heterogeneous capability vectors.

    The defaults model a mixed desktop/server population:

    * CPU: discrete classes {1, 2, 4, 8, 16} with a skew towards small.
    * Memory: 2**U(0, 6) GB.
    * Bandwidth: log-normal (median ~10 Mbit/s, long upper tail).
    * Storage: log-normal around ~100 GB.
    * Uptime: Pareto (most sessions short, a stable core very long).
    * Loads: Beta(2, 5) — mostly lightly loaded.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def sample(self) -> NodeCapacity:
        r = self.rng
        cpu = float(r.choice([1, 2, 4, 8, 16], p=[0.35, 0.3, 0.2, 0.1, 0.05]))
        memory = float(2.0 ** r.uniform(0, 6))
        bandwidth = float(np.exp(r.normal(np.log(10.0), 1.0)))
        storage = float(np.exp(r.normal(np.log(100.0), 0.8)))
        uptime = float((r.pareto(1.5) + 1.0) * 2.0)
        cpu_load = float(r.beta(2, 5))
        net_load = float(r.beta(2, 5))
        return NodeCapacity(
            cpu=cpu,
            memory_gb=memory,
            bandwidth_mbps=bandwidth,
            storage_gb=storage,
            uptime_hours=uptime,
            cpu_load=cpu_load,
            net_load=net_load,
        )

    def sample_many(self, count: int) -> List[NodeCapacity]:
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        return [self.sample() for _ in range(count)]


def uniform_capacity() -> NodeCapacity:
    """A homogeneous default, handy in unit tests."""
    return NodeCapacity()
