"""TreeP core: the paper's primary contribution.

The overlay is built from the bottom up:

* :mod:`repro.core.ids` — the 1-D ID space and ID assignment strategies.
* :mod:`repro.core.capacity` — heterogeneous node capability vectors and the
  scalar capacity score consumed by elections and variable-``nc``.
* :mod:`repro.core.tessellation` — 1-D Voronoi cells over level buses.
* :mod:`repro.core.distance` — the tessellation-aware metric ``D(a, b)``.
* :mod:`repro.core.routing_table` — the six per-node tables with timestamps.
* :mod:`repro.core.messages` — every datagram type of the protocol.
* :mod:`repro.core.node` — the per-node protocol engine.
* :mod:`repro.core.hierarchy` — elections, promotion, demotion.
* :mod:`repro.core.maintenance` — keep-alives and delta synchronisation.
* :mod:`repro.core.lookup` — the G / NG / NGSA routing algorithms.
* :mod:`repro.core.treep` — :class:`~repro.core.treep.TreePNetwork`, the
  public orchestration API.

Layer contract: the overlay core may import only ``repro.sim`` (the
event kernel it runs on) and — for instrumentation reached only via
nil-guarded hooks — the ambient ``repro.obs.runtime`` hub, no other
``repro.obs`` module; it must not import ``repro.cluster``,
``repro.services``, ``repro.storage`` or ``repro.compute`` — subsystems
build on the core, never the reverse.  Checked by ``python -m
repro.lint`` (RPR201/RPR202) against ``repro/lint/layers.toml``.
"""

from repro.core.capacity import CapacityDistribution, NodeCapacity
from repro.core.config import TreePConfig
from repro.core.distance import treep_distance
from repro.core.ids import IdSpace, assign_ids
from repro.core.lookup import LookupAlgorithm, LookupResult
from repro.core.treep import TreePNetwork

__all__ = [
    "CapacityDistribution",
    "IdSpace",
    "LookupAlgorithm",
    "LookupResult",
    "NodeCapacity",
    "TreePConfig",
    "TreePNetwork",
    "assign_ids",
    "treep_distance",
]
