"""Datagram payloads of the TreeP protocol.

Every message is a small frozen, ``slots=True`` dataclass (messages are
allocated once per datagram on the simulator's hottest path — slots cut
both per-instance memory and attribute-access cost at 10k nodes) with an
approximate ``wire_size`` (bytes) so the network layer can account
control-plane overhead.  Sizes follow the paper's entry format — an entry
is ``(ID, IP, Port)`` plus metadata, ~16 bytes on the wire.

Message families:

* **Bootstrap / join** — :class:`Hello`, :class:`HelloAck`, :class:`JoinRequest`,
  :class:`JoinRedirect`, :class:`JoinAccept`.
* **Maintenance** — :class:`KeepAlive`, :class:`KeepAliveAck`,
  :class:`ChildReport` (child → parent heartbeat; §III.a "if they do not
  report regularly they will simply be deleted").
* **Hierarchy** — :class:`ElectionStart`, :class:`ParentClaim`,
  :class:`ParentAnnounce`, :class:`PromoteGrant`, :class:`Demote`.
* **Lookup** — :class:`LookupRequest`, :class:`LookupReply`.
* **Services** — :class:`DhtPut`, :class:`DhtGet`, :class:`DhtValue`,
  :class:`DhtPutAck` (key/value layer), :class:`ResourceQuery`,
  :class:`ResourceHit` (discovery layer).
* **Replicated storage** — :class:`StorePut` / :class:`StoreGet` (client
  requests routed to the key's responsible node), :class:`StoreReplicate` /
  :class:`StoreAck` (coordinator ↔ replica write traffic, also used by
  read repair and anti-entropy), :class:`StoreRead` /
  :class:`StoreReadReply` (quorum reads), :class:`StorePutResult` /
  :class:`StoreGetResult` (coordinator → client outcomes).
* **Grid compute** — :class:`JobSubmit` / :class:`JobAck` (submitter ↔
  scheduler), :class:`JobDispatch` / :class:`JobAccepted` /
  :class:`JobRejected` (scheduler ↔ worker placement),
  :class:`JobHeartbeat` / :class:`JobComplete` (worker → scheduler
  liveness and outcome), :class:`JobReport` (scheduler → submitter),
  :class:`JobStealRequest` / :class:`JobStealGrant` (sibling work
  stealing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, NamedTuple, Optional, Tuple

EntryTuple = Tuple[int, int, float, int, float]  # (id, max_level, score, nc, last_seen)

_ENTRY_BYTES = 16
_HEADER_BYTES = 28  # UDP/IP header + message tag


def _entries_size(entries: Tuple[EntryTuple, ...]) -> int:
    return _HEADER_BYTES + _ENTRY_BYTES * len(entries)


# --------------------------------------------------------------- bootstrap
@dataclass(frozen=True, slots=True)
class Hello:
    """First contact: §III.d — exchange resources and state."""

    max_level: int
    score: float
    nc: int

    wire_size: int = _HEADER_BYTES + 12


@dataclass(frozen=True, slots=True)
class HelloAck:
    max_level: int
    score: float
    nc: int

    wire_size: int = _HEADER_BYTES + 12


@dataclass(frozen=True, slots=True)
class JoinRequest:
    """A joining node asks *dst* to place it on level 0."""

    joiner: int
    score: float
    nc: int

    wire_size: int = _HEADER_BYTES + 12


@dataclass(frozen=True, slots=True)
class JoinRedirect:
    """Forwarded join: *closer* is nearer the joiner's ID."""

    joiner: int
    closer: int

    wire_size: int = _HEADER_BYTES + 8


@dataclass(frozen=True, slots=True)
class JoinAccept:
    """Placement result: the joiner's level-0 neighbours and parent."""

    left: Optional[int]
    right: Optional[int]
    parent: Optional[int]

    wire_size: int = _HEADER_BYTES + 12


@dataclass(frozen=True, slots=True)
class Splice:
    """Level-0 bus splice: *joiner* now sits between *left* and *right*.

    Sent by the accepting node to the displaced neighbours so they update
    their level-0 links to point at the joiner.
    """

    joiner: int
    left: Optional[int]
    right: Optional[int]

    wire_size: int = _HEADER_BYTES + 12


# -------------------------------------------------------------- maintenance
@dataclass(frozen=True, slots=True)
class KeepAlive:
    """Periodic liveness probe carrying a piggybacked delta (§III.d)."""

    entries: Tuple[EntryTuple, ...] = ()
    since: float = 0.0

    @property
    def wire_size(self) -> int:
        return _entries_size(self.entries)


@dataclass(frozen=True, slots=True)
class KeepAliveAck:
    entries: Tuple[EntryTuple, ...] = ()

    @property
    def wire_size(self) -> int:
        return _entries_size(self.entries)


@dataclass(frozen=True, slots=True)
class ChildReport:
    """Child → parent heartbeat with current load/score."""

    child: int
    score: float
    max_level: int

    wire_size: int = _HEADER_BYTES + 12


# ---------------------------------------------------------------- hierarchy
@dataclass(frozen=True, slots=True)
class ElectionStart:
    """A node with degree >= 2 and no parent triggers an election (§III.b)."""

    level: int
    initiator: int

    wire_size: int = _HEADER_BYTES + 8


@dataclass(frozen=True, slots=True)
class ParentClaim:
    """Countdown winner announces itself parent to the electorate."""

    level: int  # the level the winner now occupies (electorate level + 1)
    winner: int
    score: float

    wire_size: int = _HEADER_BYTES + 12


@dataclass(frozen=True, slots=True)
class ParentAnnounce:
    """Parent → child adoption notice with the parent's ancestry.

    ``superiors`` seeds the child's superior-node list (Figure 2).
    """

    level: int
    parent: int
    superiors: Tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 8 + 8 * len(self.superiors)


@dataclass(frozen=True, slots=True)
class PromoteGrant:
    """Parent promotes *child* to its own level (cell overflow split)."""

    child: int
    to_level: int

    wire_size: int = _HEADER_BYTES + 8


@dataclass(frozen=True, slots=True)
class Demote:
    """An under-filled parent abdicates level *level* (§III.b)."""

    node: int
    level: int

    wire_size: int = _HEADER_BYTES + 8


# ------------------------------------------------------------------- lookup
class LookupRequest(NamedTuple):
    """One routed lookup packet.

    A ``NamedTuple`` rather than a frozen dataclass: a fresh request object
    is built on *every* forwarding hop (immutable wire semantics), and
    tuple construction skips the per-field ``object.__setattr__`` cost of
    frozen dataclasses — measurably the hottest allocation of a 10k-node
    lookup run.  Same field order, defaults, and immutability.

    Attributes
    ----------
    request_id:
        Origin-unique id; the origin matches replies to requests.
    origin:
        Node that issued the lookup (replies go straight back — the paper's
        "transmit back the result").
    target:
        The ID being resolved.
    algo:
        ``"G"``, ``"NG"`` or ``"NGSA"``.
    ttl:
        Hops consumed so far; discarded above the configured cap (255).
    from_parent_level:
        When the previous hop was the receiver's parent at level ``l``,
        Fig. 3 takes different branches; 0 means "not from a parent".
    alternates:
        NGSA only: fallback candidates accumulated along the path, consumed
        on dead ends ("at the expense of adding data to the request").
    path:
        IDs visited (loop avoidance + failed-hop accounting).
    """

    request_id: int
    origin: int
    target: int
    algo: str
    ttl: int = 0
    from_parent_level: int = 0
    alternates: Tuple[int, ...] = ()
    path: Tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 24 + 8 * len(self.alternates) + 8 * len(self.path)


class LookupReply(NamedTuple):
    """Terminal answer sent straight to the origin (``NamedTuple`` for the
    same hot-allocation reason as :class:`LookupRequest`)."""

    request_id: int
    target: int
    found: bool
    resolved: Optional[int]  # the (ID == address) resolved, when found
    hops: int
    path: Tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 16 + 8 * len(self.path)


# ----------------------------------------------------------------- services
@dataclass(frozen=True, slots=True)
class DhtPut:
    """Routed store request; ``direct`` marks a replica copy that must be
    stored by the receiver without further routing."""

    request_id: int
    origin: int
    key_id: int
    value: Any = None
    ttl: int = 0
    replicas: int = 1
    direct: bool = False

    wire_size: int = _HEADER_BYTES + 64


@dataclass(frozen=True, slots=True)
class DhtGet:
    request_id: int
    origin: int
    key_id: int
    ttl: int = 0

    wire_size: int = _HEADER_BYTES + 16


@dataclass(frozen=True, slots=True)
class DhtValue:
    """GET reply: the stored value (or a miss)."""

    request_id: int
    key_id: int
    found: bool
    value: Any = None
    hops: int = 0

    wire_size: int = _HEADER_BYTES + 64


@dataclass(frozen=True, slots=True)
class DhtPutAck:
    """PUT acknowledgement — distinct from :class:`DhtValue` so a store
    confirmation can never be mistaken for a GET hit, and the replica set
    travels in its own field instead of hijacking ``value``."""

    request_id: int
    key_id: int
    ok: bool
    stored_on: Tuple[int, ...] = ()
    hops: int = 0

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 16 + 8 * len(self.stored_on)


@dataclass(frozen=True, slots=True)
class ResourceQuery:
    """Attribute-constrained resource discovery (DGET substrate).

    ``min_cpu``/``min_memory_gb``/``min_bandwidth_mbps`` express the grid
    job's requirements; the query walks the hierarchy aggregates.
    """

    request_id: int
    origin: int
    min_cpu: float = 0.0
    min_memory_gb: float = 0.0
    min_bandwidth_mbps: float = 0.0
    max_results: int = 4
    ttl: int = 0

    wire_size: int = _HEADER_BYTES + 28


@dataclass(frozen=True, slots=True)
class ResourceHit:
    request_id: int
    nodes: Tuple[int, ...] = ()
    hops: int = 0

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 8 * len(self.nodes)


# -------------------------------------------------------- replicated storage
@dataclass(frozen=True, slots=True)
class StorePut:
    """Client write, routed greedily towards the key's responsible node."""

    request_id: int
    origin: int
    key_id: int
    value: Any = None
    ttl: int = 0

    wire_size: int = _HEADER_BYTES + 72


@dataclass(frozen=True, slots=True)
class StoreGet:
    """Client read, routed like :class:`StorePut`.

    ``path`` records the nodes visited so the sloppy-read fallback (an
    NGSA-style sideways hop taken when a coordinator's replicas all miss)
    never loops; ``fallbacks`` counts those non-improving hops against the
    configured budget.
    """

    request_id: int
    origin: int
    key_id: int
    ttl: int = 0
    fallbacks: int = 0
    path: Tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 16 + 8 * len(self.path)


@dataclass(frozen=True, slots=True)
class StoreReplicate:
    """Coordinator → replica: adopt this version of the key.

    Carries the full ``(timestamp, version, writer)`` stamp so the receiver
    merges it last-write-wins; also the vehicle for read repair and
    anti-entropy re-replication (with a request id no coordinator is
    waiting on).
    """

    request_id: int
    coordinator: int
    key_id: int
    value: Any
    version: int
    writer: int
    timestamp: float = 0.0

    wire_size: int = _HEADER_BYTES + 88


@dataclass(frozen=True, slots=True)
class StoreAck:
    """Replica → coordinator write acknowledgement (the dedicated ack type)."""

    request_id: int
    key_id: int
    holder: int
    version: int
    ok: bool = True

    wire_size: int = _HEADER_BYTES + 24


@dataclass(frozen=True, slots=True)
class StoreRead:
    """Coordinator → replica: report your version of the key."""

    request_id: int
    coordinator: int
    key_id: int

    wire_size: int = _HEADER_BYTES + 16


@dataclass(frozen=True, slots=True)
class StoreReadReply:
    """Replica → coordinator: the replica's versioned copy (or a miss)."""

    request_id: int
    key_id: int
    holder: int
    found: bool
    value: Any = None
    version: int = 0
    writer: int = -1
    timestamp: float = 0.0

    wire_size: int = _HEADER_BYTES + 88


@dataclass(frozen=True, slots=True)
class StorePutResult:
    """Coordinator → client: quorum write outcome."""

    request_id: int
    key_id: int
    ok: bool
    version: int = 0
    replicas: Tuple[int, ...] = ()
    hops: int = 0

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 24 + 8 * len(self.replicas)


@dataclass(frozen=True, slots=True)
class StoreGetResult:
    """Coordinator → client: quorum read outcome (freshest version wins)."""

    request_id: int
    key_id: int
    found: bool
    value: Any = None
    version: int = 0
    quorum_met: bool = True
    hops: int = 0

    wire_size: int = _HEADER_BYTES + 80


# ------------------------------------------------------------- grid compute
@dataclass(frozen=True, slots=True)
class JobSubmit:
    """Submitter → scheduler: routed greedily towards the scheduler's ID.

    Carries the job's demand vector like :class:`ResourceQuery` carries a
    query's: ``cpu_demand`` in CPU-share units, ``work`` in virtual seconds
    of unit-rate compute, plus the minimum-capability constraint the
    matchmaker must honour.  ``deps`` lists job ids that must complete
    first (DAG edges); ``resume`` marks a failover re-submission whose
    execution should restart from the last checkpoint.
    """

    request_id: int
    origin: int
    job_id: int
    scheduler: int
    cpu_demand: float = 1.0
    work: float = 10.0
    min_cpu: float = 0.0
    min_memory_gb: float = 0.0
    min_bandwidth_mbps: float = 0.0
    deps: Tuple[int, ...] = ()
    resume: bool = False
    ttl: int = 0

    @property
    def wire_size(self) -> int:
        return _HEADER_BYTES + 48 + 8 * len(self.deps)


@dataclass(frozen=True, slots=True)
class JobAck:
    """Scheduler → submitter: the job entered the scheduler's table."""

    request_id: int
    job_id: int
    scheduler: int
    accepted: bool = True
    hops: int = 0

    wire_size: int = _HEADER_BYTES + 20


@dataclass(frozen=True, slots=True)
class JobDispatch:
    """Scheduler → worker: run this job (attempt *attempt*).

    ``resume`` asks the worker to restart from the job's last quorum-stored
    checkpoint instead of from zero; the constraint triple rides along so a
    queued copy can later be steal-matched against a thief's capabilities.
    """

    job_id: int
    scheduler: int
    attempt: int
    cpu_demand: float = 1.0
    work: float = 10.0
    min_cpu: float = 0.0
    min_memory_gb: float = 0.0
    min_bandwidth_mbps: float = 0.0
    resume: bool = False

    wire_size: int = _HEADER_BYTES + 48


@dataclass(frozen=True, slots=True)
class JobAccepted:
    """Worker → scheduler: dispatch acknowledged (running or queued)."""

    job_id: int
    worker: int
    attempt: int
    queued: bool = False

    wire_size: int = _HEADER_BYTES + 16


@dataclass(frozen=True, slots=True)
class JobRejected:
    """Worker → scheduler: cannot hold the job (no headroom); re-place."""

    job_id: int
    worker: int
    attempt: int

    wire_size: int = _HEADER_BYTES + 12


@dataclass(frozen=True, slots=True)
class JobHeartbeat:
    """Worker → scheduler: periodic liveness + progress for one held job.

    Also the vehicle by which the scheduler learns about work stealing: a
    heartbeat for a current attempt arriving from an unexpected worker
    reassigns the job to the sender.
    """

    job_id: int
    worker: int
    attempt: int
    progress: float = 0.0
    queued: bool = False

    wire_size: int = _HEADER_BYTES + 24


@dataclass(frozen=True, slots=True)
class JobLease:
    """Scheduler → worker: heartbeat acknowledged, keep running.

    The fencing half of failure detection: a worker whose heartbeats stop
    being acknowledged (its scheduler died, or the job was re-placed and
    its attempt is stale) writes a final checkpoint and abandons the run
    once the lease lapses, bounding duplicate execution.
    """

    job_id: int
    attempt: int

    wire_size: int = _HEADER_BYTES + 12


@dataclass(frozen=True, slots=True)
class JobComplete:
    """Worker → scheduler: the attempt finished; ``executed`` is the
    virtual compute time this attempt actually spent."""

    job_id: int
    worker: int
    attempt: int
    executed: float = 0.0

    wire_size: int = _HEADER_BYTES + 20


@dataclass(frozen=True, slots=True)
class JobReport:
    """Scheduler → submitter: terminal job outcome."""

    request_id: int
    job_id: int
    ok: bool
    worker: int = -1
    attempts: int = 1

    wire_size: int = _HEADER_BYTES + 20


@dataclass(frozen=True, slots=True)
class JobStealRequest:
    """Idle worker → level-0 sibling: offer spare capacity.

    Carries the thief's static capabilities so the victim can check a
    queued job's constraint before granting it away.
    """

    thief: int
    free_cpu: float
    cpu: float = 1.0
    memory_gb: float = 1.0
    bandwidth_mbps: float = 10.0

    wire_size: int = _HEADER_BYTES + 24


@dataclass(frozen=True, slots=True)
class JobStealGrant:
    """Loaded worker → thief: hand over one queued job.

    Carries the constraint triple so the job stays steal-matchable if the
    thief in turn queues it.
    """

    job_id: int
    victim: int
    scheduler: int
    attempt: int
    cpu_demand: float = 1.0
    work: float = 10.0
    min_cpu: float = 0.0
    min_memory_gb: float = 0.0
    min_bandwidth_mbps: float = 0.0
    resume: bool = False

    wire_size: int = _HEADER_BYTES + 48
