"""Routing-table maintenance: keep-alives with delta piggybacking (§III.d).

The paper's maintenance rules:

* On first contact two nodes exchange resources and state (the Hello
  handshake in :mod:`repro.core.node`).
* Afterwards, peers on an *active connection* exchange **only out-of-date
  information**, piggybacked on periodic keep-alives.
* A parent does not probe its children; children report
  (:class:`~repro.core.messages.ChildReport`) and silent children simply
  expire out of the table.
* Every entry carries a timestamp, reset on each active communication, and
  is deleted after expiry.

The :class:`MaintenanceManager` owns the per-node timer, tracks the last
synchronisation time per peer (so each delta contains exactly the entries
refreshed since that peer last heard from us), and runs lazy expiry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.core.messages import ChildReport, KeepAlive, KeepAliveAck

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import TreePNode


@dataclass
class MaintenanceStats:
    """Counters consumed by the overhead benches."""

    keepalives_sent: int = 0
    acks_sent: int = 0
    entries_shipped: int = 0
    entries_expired: int = 0
    child_reports_sent: int = 0


class MaintenanceManager:
    """Periodic maintenance loop of one node.

    Parameters
    ----------
    node:
        Owning protocol engine.
    jitter_fraction:
        Keep-alive periods are jittered by up to this fraction to
        de-synchronise the population (avoids synchronized bursts, which
        both overstate instantaneous load and under-exercise the protocol).
    """

    def __init__(self, node: "TreePNode", jitter_fraction: float = 0.1) -> None:
        self.node = node
        self.jitter_fraction = jitter_fraction
        self.stats = MaintenanceStats()
        #: Last time we shipped a delta to each peer.
        self._last_sync: Dict[int, float] = {}
        self._timer = None
        node.maintenance = self

    # ------------------------------------------------------------- control
    def start(self) -> None:
        """Arm the periodic keep-alive timer."""
        if self._timer is not None and self._timer.running:
            return
        node = self.node
        interval = node.config.keepalive_interval
        rng = None
        jitter = None
        if self.jitter_fraction > 0:
            import random

            # Deterministic per-node phase, independent of global RNG state.
            rng = random.Random(node.ident)
            jitter = lambda: (rng.random() - 0.5) * 2 * self.jitter_fraction * interval
        self._timer = node.sim.every(interval, self.tick, jitter=jitter,
                                     label=f"keepalive:{node.ident}")

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    # ----------------------------------------------------------------- tick
    def tick(self) -> None:
        """One maintenance round: expiry, keep-alives, child report."""
        node = self.node
        now = node.sim.now
        expired = node.table.expire(now, node.config.entry_ttl)
        self.stats.entries_expired += len(expired)
        for level, kids in list(node.children_by_level.items()):
            node.children_by_level[level] = [k for k in kids if k not in expired]

        for peer in node.table.active_connections():
            since = self._last_sync.get(peer, -1.0)
            delta = tuple(node.table.delta_since(since))
            node.send(peer, KeepAlive(entries=delta, since=since))
            self._last_sync[peer] = now
            self.stats.keepalives_sent += 1
            self.stats.entries_shipped += len(delta)

        # Children report to their parent; silent children get expired.
        parent = node.table.parents.get(node.max_level + 1)
        if parent is not None:
            node.send(parent, ChildReport(node.ident, node.score, node.max_level))
            self.stats.child_reports_sent += 1

        node.check_demotion()

    # ------------------------------------------------------------ receive
    def on_keepalive(self, src: int, msg: KeepAlive) -> None:
        """Reply with our delta since the peer's recorded sync point."""
        node = self.node
        since = self._last_sync.get(src, -1.0)
        delta = tuple(node.table.delta_since(since))
        node.send(src, KeepAliveAck(entries=delta))
        self._last_sync[src] = node.sim.now
        self.stats.acks_sent += 1
        self.stats.entries_shipped += len(delta)
