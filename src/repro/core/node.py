"""The TreeP protocol engine: one :class:`TreePNode` per peer.

A node is a :class:`~repro.sim.network.Process`; every interaction is a
datagram, every decision is node-local.  The node composes:

* its :class:`~repro.core.routing_table.RoutingTable`,
* the pure router (:func:`repro.core.lookup.route`),
* the maintenance loop (:class:`repro.core.maintenance.MaintenanceManager`),
* the countdown protocols (:class:`~repro.core.hierarchy.ElectionManager`,
  :class:`~repro.core.hierarchy.DemotionManager`).

Lookup life-cycle (origin side): :meth:`issue_lookup` registers a
:class:`PendingLookup` with a timeout; a :class:`LookupReply` resolves it,
the timeout marks it failed.  The experiment harness reads the resulting
:class:`~repro.core.lookup.LookupResult` objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.capacity import NodeCapacity
from repro.core.config import TreePConfig
from repro.core.hierarchy import DemotionManager, ElectionManager
from repro.core.lookup import (
    DecisionKind,
    LookupAlgorithm,
    LookupResult,
    route,
)
from repro.core.messages import (
    ChildReport,
    Demote,
    ElectionStart,
    Hello,
    HelloAck,
    JoinAccept,
    JoinRedirect,
    JoinRequest,
    KeepAlive,
    KeepAliveAck,
    LookupReply,
    LookupRequest,
    ParentAnnounce,
    ParentClaim,
    PromoteGrant,
    Splice,
)
from repro.core.routing_table import RoutingTable
from repro.sim.network import Datagram, Process
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(slots=True)
class PendingLookup:
    """Origin-side record of an in-flight lookup."""

    request_id: int
    target: int
    algo: LookupAlgorithm
    issued_at: float
    timeout_event: object = None
    result: Optional[LookupResult] = None
    on_done: Optional[Callable[[LookupResult], None]] = None


class TreePNode(Process):
    """One TreeP peer.

    Parameters
    ----------
    ident:
        Overlay ID == network address.
    capacity:
        The peer's capability vector.
    config:
        Shared overlay configuration.
    tracer:
        Optional structured tracer (defaults to the null tracer).
    """

    def __init__(
        self,
        ident: int,
        capacity: NodeCapacity,
        config: TreePConfig,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(ident)
        self.ident = ident
        self.capacity = capacity
        self.config = config
        self.tracer = tracer
        self.table = RoutingTable(ident)
        #: Highest level this node occupies (0 = leaf-only).
        self.max_level = 0
        #: Node-local estimate of the hierarchy height ``h``.
        self.height = 1
        #: Children per level this node parents: level -> sorted ids.
        self.children_by_level: Dict[int, List[int]] = {}
        self.nc = (
            config.nc_fixed
            if config.nc_mode == "fixed"
            else capacity.max_children(config.nc_floor, config.nc_ceiling)
        )
        self.elections = ElectionManager(ident, capacity, config)
        self.demotions = DemotionManager(ident, capacity, config)
        self._req_counter = itertools.count(1)
        self.pending: Dict[int, PendingLookup] = {}
        self.results: List[LookupResult] = []
        #: Per-request hop observation hook installed by the harness
        #: (measurement only, never read by routing).
        self.hop_observer: Optional[Callable[[LookupRequest], None]] = None
        #: Observability hub (see :mod:`repro.obs`); ``None`` keeps every
        #: instrumentation site to a single attribute check.
        self.obs = None
        #: The maintenance manager attaches itself here (see maintenance.py).
        self.maintenance = None
        #: Service-registered datagram handlers, keyed by payload type.
        #: Consulted before the built-in ``_on_<Type>`` methods, so layered
        #: services (DHT, replicated storage, …) extend the protocol without
        #: monkey-patching the class.
        self.handlers: Dict[type, Callable[[int, Any], None]] = {}

    # ------------------------------------------------------------- handlers
    def register_handler(
        self,
        msg_type: type,
        handler: Callable[[int, Any], None],
        replace: bool = False,
    ) -> None:
        """Route datagrams whose payload is a *msg_type* to *handler*.

        ``handler(src, payload)`` is invoked exactly like a built-in
        ``_on_<Type>`` method.  Registered handlers take precedence over the
        built-ins, letting a service override core behaviour per node.  A
        second registration for the same type raises unless ``replace=True``
        (re-instantiating a service facade replaces its predecessor).
        """
        if not replace and msg_type in self.handlers:
            raise ValueError(
                f"node {self.ident} already has a handler for {msg_type.__name__}"
            )
        self.handlers[msg_type] = handler

    def unregister_handler(
        self,
        msg_type: type,
        handler: Optional[Callable[[int, Any], None]] = None,
    ) -> None:
        """Remove the service handler for *msg_type* (no-op when absent).

        When *handler* is given, the registration is only removed if it is
        still that exact callable — a service tearing itself down must not
        evict the successor that already replaced it (the registry-owned
        cleanup in :mod:`repro.cluster` relies on this).
        """
        if handler is not None and self.handlers.get(msg_type) is not handler:
            return
        self.handlers.pop(msg_type, None)

    def handler_types(self) -> Set[type]:
        """Message types currently claimed by service handlers (diagnostics
        and the service-registry leak regression tests)."""
        return set(self.handlers)

    # ------------------------------------------------------------- identity
    @property
    def score(self) -> float:
        return self.capacity.score()

    def meta(self) -> Dict[str, float]:
        """Metadata advertised in Hello/KeepAlive exchanges."""
        return {"max_level": self.max_level, "score": self.score, "nc": self.nc}

    def child_count(self, level: int) -> int:
        return len(self.children_by_level.get(level, ()))

    # ------------------------------------------------------------ dispatch
    #: payload type -> bound-to-class ``_on_<Type>`` method (or None),
    #: built lazily per class — ``__init_subclass__`` gives every subclass
    #: its own dict so an overriding ``_on_<Type>`` is re-resolved there.
    _builtin_dispatch: Dict[type, Optional[Callable]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls._builtin_dispatch = {}

    def on_datagram(self, dgram: Datagram) -> None:
        """Dispatch *dgram* by payload type: service handlers first, then
        the built-in ``_on_<Type>`` methods via a per-class dict built
        lazily on first sight of each payload type (the ``getattr`` with a
        per-message f-string it replaces dominated dispatch profiles at
        10k nodes)."""
        payload = dgram.payload
        ptype = type(payload)
        registered = self.handlers.get(ptype)
        if registered is not None:
            registered(dgram.src, payload)
            return
        cache = self._builtin_dispatch
        try:
            handler = cache[ptype]
        except KeyError:
            cls = type(self)
            handler = cache[ptype] = getattr(cls, f"_on_{ptype.__name__}", None)
        if handler is None:
            self.tracer.record(self.sim.now, "drop", self.ident,
                               f"no handler for {ptype.__name__}")
            return
        handler(self, dgram.src, payload)

    # -------------------------------------------------------------- lookups
    def issue_lookup(
        self,
        target: int,
        algo: LookupAlgorithm | str = LookupAlgorithm.GREEDY,
        on_done: Optional[Callable[[LookupResult], None]] = None,
    ) -> PendingLookup:
        """Start resolving *target* from this node."""
        algo = LookupAlgorithm.parse(algo if isinstance(algo, str) else algo.value)
        rid = (self.ident << 20) | next(self._req_counter)
        pend = PendingLookup(
            request_id=rid,
            target=target,
            algo=algo,
            issued_at=self.sim.now,
            on_done=on_done,
        )
        self.pending[rid] = pend
        obs = self.obs
        if obs is not None:
            obs.lookup_begin(rid, self.ident, self.sim.now)
        pend.timeout_event = self.sim.schedule(
            self.config.lookup_timeout,
            lambda: self._lookup_timeout(rid),
            label=f"lookup-timeout:{rid}",
        )
        req = LookupRequest(
            request_id=rid, origin=self.ident, target=target, algo=algo.value,
            ttl=0, path=(),
        )
        self._route_and_act(req)
        return pend

    def _lookup_timeout(self, rid: int) -> None:
        pend = self.pending.pop(rid, None)
        if pend is None:
            return
        res = LookupResult(
            request_id=rid, origin=self.ident, target=pend.target,
            algo=pend.algo, found=False, hops=0, timed_out=True,
        )
        pend.result = res
        self.results.append(res)
        obs = self.obs
        if obs is not None:
            obs.lookup_end(rid, self.sim.now, found=False, hops=0,
                           timed_out=True)
        if pend.on_done is not None:
            pend.on_done(res)

    def _on_LookupRequest(self, src: int, req: LookupRequest) -> None:
        if self.hop_observer is not None:
            self.hop_observer(req)
        self._route_and_act(req)

    def _route_and_act(self, req: LookupRequest) -> None:
        decision = route(self, req)
        if decision.kind is DecisionKind.FOUND:
            reply = LookupReply(
                request_id=req.request_id, target=req.target, found=True,
                resolved=decision.resolved, hops=req.ttl,
                path=req.path + (self.ident,),
            )
            if req.origin == self.ident:
                self._on_LookupReply(self.ident, reply)
            else:
                self.send(req.origin, reply)
            return
        if decision.kind is DecisionKind.FORWARD:
            assert decision.next_hop is not None
            nxt = decision.next_hop
            table = self.table
            from_parent_level = 0
            if nxt in table.children:
                entry = table._entries.get(nxt)
                if entry is not None:
                    # We are the next hop's parent: it sees the request as
                    # "coming from the parent of level (its max level + 1)".
                    from_parent_level = entry.max_level + 1
            fwd = LookupRequest(
                request_id=req.request_id, origin=req.origin, target=req.target,
                algo=req.algo, ttl=req.ttl + 1,
                from_parent_level=from_parent_level,
                alternates=decision.alternates,
                path=req.path + (self.ident,),
            )
            self.send(nxt, fwd)
            return
        if decision.kind is DecisionKind.NOT_FOUND:
            reply = LookupReply(
                request_id=req.request_id, target=req.target, found=False,
                resolved=None, hops=req.ttl, path=req.path + (self.ident,),
            )
            if req.origin == self.ident:
                self._on_LookupReply(self.ident, reply)
            else:
                self.send(req.origin, reply)
            return
        # DISCARD: drop silently; the origin's timeout accounts for it.
        self.tracer.record(self.sim.now, "lookup-discard", self.ident,
                           f"rid={req.request_id} ttl={req.ttl}")

    def _on_LookupReply(self, src: int, reply: LookupReply) -> None:
        pend = self.pending.pop(reply.request_id, None)
        if pend is None:
            return  # late duplicate after timeout
        if pend.timeout_event is not None:
            pend.timeout_event.cancel()  # type: ignore[attr-defined]
        res = LookupResult(
            request_id=reply.request_id, origin=self.ident, target=reply.target,
            algo=pend.algo, found=reply.found, hops=reply.hops,
            timed_out=False, path=reply.path,
        )
        pend.result = res
        self.results.append(res)
        obs = self.obs
        if obs is not None:
            obs.lookup_end(reply.request_id, self.sim.now, reply.found,
                           reply.hops)
        if pend.on_done is not None:
            pend.on_done(res)

    # ------------------------------------------------------- hello / splice
    def _on_Hello(self, src: int, msg: Hello) -> None:
        self.table.upsert(src, self.sim.now, max_level=msg.max_level,
                          score=msg.score, nc=msg.nc)
        self.send(src, HelloAck(max_level=self.max_level, score=self.score, nc=self.nc))

    def _on_HelloAck(self, src: int, msg: HelloAck) -> None:
        self.table.upsert(src, self.sim.now, max_level=msg.max_level,
                          score=msg.score, nc=msg.nc)

    def _on_Splice(self, src: int, msg: Splice) -> None:
        """A join displaced one of our level-0 links: adopt the joiner."""
        now = self.sim.now
        self.table.add_level0(msg.joiner, now)
        # Keep at most min_level0_connections + joiner; drop the link the
        # joiner replaced (it is now reachable through the joiner).
        if msg.left == self.ident and msg.right is not None:
            self.table.level0.discard(msg.right)
        elif msg.right == self.ident and msg.left is not None:
            self.table.level0.discard(msg.left)
        self.send(msg.joiner, Hello(self.max_level, self.score, self.nc))

    # ----------------------------------------------------------------- join
    def _on_JoinRequest(self, src: int, msg: JoinRequest) -> None:
        """Greedy placement: accept if the joiner belongs between us and a
        level-0 neighbour, otherwise forward towards its ID."""
        space = self.config.space
        now = self.sim.now
        joiner = msg.joiner
        neighbours = sorted(self.table.level0)
        lo = max((n for n in neighbours if n < joiner), default=None)
        hi = min((n for n in neighbours if n > joiner), default=None)

        here = space.distance(self.ident, joiner)
        closer = [n for n in neighbours if space.distance(n, joiner) < here]
        if closer and not (min(self.ident, lo or self.ident) < joiner < max(self.ident, hi or self.ident)):
            nxt = min(closer, key=lambda n: space.distance(n, joiner))
            self.send(nxt, msg)
            return

        # Place the joiner adjacent to us, between self and lo or hi.
        if joiner < self.ident:
            left, right = lo, self.ident
        else:
            left, right = self.ident, hi
        self.table.add_level0(joiner, now, score=msg.score, nc=msg.nc)
        parent = self.table.level1_parent() if self.max_level == 0 else self.ident
        self.send(joiner, JoinAccept(left=left, right=right, parent=parent))
        other = left if right == self.ident else right
        if other is not None:
            self.send(other, Splice(joiner=joiner, left=left, right=right))

    def join_via(self, bootstrap: int) -> None:
        """Ask *bootstrap* to place this node on level 0."""
        self.send(bootstrap, JoinRequest(joiner=self.ident, score=self.score, nc=self.nc))

    def _on_JoinRedirect(self, src: int, msg: JoinRedirect) -> None:
        if msg.joiner == self.ident:
            self.send(msg.closer, JoinRequest(joiner=self.ident, score=self.score, nc=self.nc))

    def _on_JoinAccept(self, src: int, msg: JoinAccept) -> None:
        now = self.sim.now
        for n in (msg.left, msg.right):
            if n is not None and n != self.ident:
                self.table.add_level0(n, now)
                self.send(n, Hello(self.max_level, self.score, self.nc))
        if msg.parent is not None and msg.parent != self.ident:
            self.table.set_parent(1, msg.parent, now)
            self.send(msg.parent, ChildReport(self.ident, self.score, self.max_level))

    # ----------------------------------------------------------- hierarchy
    def _on_ChildReport(self, src: int, msg: ChildReport) -> None:
        now = self.sim.now
        level = msg.max_level + 1
        if level > self.max_level:
            return  # we are no longer a parent at that level
        self.table.add_child(src, now, score=msg.score, max_level=msg.max_level)
        kids = self.children_by_level.setdefault(level, [])
        if src not in kids:
            kids.append(src)
            kids.sort()
        self.send(src, ParentAnnounce(level=level, parent=self.ident,
                                      superiors=self._superior_chain()))
        # Cell overflow (§III.a): a parent holds at most nc children; split
        # the cell B-tree-style by promoting the best-scoring child to our
        # own level.
        if len(kids) > self.nc:
            best: Optional[int] = None
            best_score = -1.0
            for k in kids:
                e = self.table.get(k)
                if e is not None and e.score > best_score:
                    best, best_score = k, e.score
            if best is not None:
                kids.remove(best)
                self.table.children.discard(best)
                self.send(best, PromoteGrant(child=best, to_level=level))

    def _on_PromoteGrant(self, src: int, msg: PromoteGrant) -> None:
        """Our parent split its over-full cell: we ascend to its level."""
        if msg.child != self.ident or msg.to_level <= self.max_level:
            return
        now = self.sim.now
        self.max_level = msg.to_level
        self.height = max(self.height, msg.to_level)
        # The old parent becomes a same-level bus neighbour; our new parent
        # is whatever covers us one level further up (learned via the
        # superior list / next ParentAnnounce).
        old_parent = self.table.parents.pop(msg.to_level, None)
        if old_parent is not None:
            self.table.add_level(msg.to_level, old_parent, now,
                                 max_level=msg.to_level)
        self.tracer.record(now, "promoted", self.ident, f"to level {msg.to_level}")

    def _superior_chain(self) -> Tuple[int, ...]:
        chain: List[int] = []
        for lvl in sorted(self.table.parents):
            chain.append(self.table.parents[lvl])
        chain.extend(sorted(self.table.superiors))
        return tuple(dict.fromkeys(chain))  # dedupe, keep order

    def _on_ParentAnnounce(self, src: int, msg: ParentAnnounce) -> None:
        now = self.sim.now
        self.table.set_parent(msg.level, msg.parent, now, max_level=msg.level)
        for s in msg.superiors:
            if s != self.ident:
                self.table.add_superior(s, now)
        # Height estimate: the deepest superior chain we have seen.
        self.height = max(self.height, msg.level + len(msg.superiors))

    def _on_ElectionStart(self, src: int, msg: ElectionStart) -> None:
        participants = sorted(self.table.neighbours_at(msg.level) | {self.ident, src})
        delay = self.elections.start(msg.level, participants)
        if delay < 0:
            return
        self.sim.schedule(delay, lambda: self._election_expired(msg.level),
                          label=f"election:{self.ident}:{msg.level}")

    def trigger_election(self, level: int = 0) -> None:
        """§III.b: degree >= 2 and no parent → start an election."""
        if self.table.parents.get(level + 1) is not None:
            return
        neighbours = self.table.neighbours_at(level)
        if len(neighbours) < 2:
            return
        msg = ElectionStart(level=level, initiator=self.ident)
        for n in neighbours:
            self.send(n, msg)
        self._on_ElectionStart(self.ident, msg)

    def _election_expired(self, level: int) -> None:
        if not self.elections.on_countdown_expired(level):
            return
        # We won: ascend one level and claim the electorate as children.
        new_level = level + 1
        self.max_level = max(self.max_level, new_level)
        self.height = max(self.height, new_level)
        e = self.elections.active[level]
        claim = ParentClaim(level=new_level, winner=self.ident, score=self.score)
        for p in e.participants:
            if p != self.ident:
                self.send(p, claim)
        self.tracer.record(self.sim.now, "election-won", self.ident, f"level={new_level}")

    def _on_ParentClaim(self, src: int, msg: ParentClaim) -> None:
        self.elections.on_claim(msg.level - 1, msg.winner)
        now = self.sim.now
        self.table.set_parent(msg.level, msg.winner, now,
                              max_level=msg.level, score=msg.score)
        self.send(msg.winner, ChildReport(self.ident, self.score, self.max_level))

    def check_demotion(self) -> None:
        """Arm the under-filled-parent countdown when applicable (§III.b)."""
        for level in range(1, self.max_level + 1):
            if self.demotions.should_demote(level, self.child_count(level)):
                if not self.demotions.pending.get(level):
                    self.demotions.pending[level] = True
                    self.sim.schedule(
                        self.demotions.countdown(),
                        lambda lvl=level: self._demotion_expired(lvl),
                        label=f"demotion:{self.ident}:{level}",
                    )

    def _demotion_expired(self, level: int) -> None:
        self.demotions.pending[level] = False
        if not self.demotions.should_demote(level, self.child_count(level)):
            return  # children arrived during the countdown
        if level != self.max_level:
            return  # only the top membership can be abdicated
        # Leave the level: notify children and same-level neighbours.
        msg = Demote(node=self.ident, level=level)
        for n in self.table.neighbours_at(level):
            self.send(n, msg)
        for c in self.children_by_level.pop(level, []):
            self.send(c, msg)
        self.max_level = level - 1
        self.table.level_tables.pop(level, None)
        self.tracer.record(self.sim.now, "demoted", self.ident, f"from level {level}")

    def _on_Demote(self, src: int, msg: Demote) -> None:
        now = self.sim.now
        if self.table.parents.get(msg.level) == msg.node:
            del self.table.parents[msg.level]
        self.table.level_tables.get(msg.level, set()).discard(msg.node)
        self.table.children.discard(msg.node)
        # Orphaned with enough neighbours → §III.b election trigger.
        if msg.level == self.max_level + 1 and len(self.table.level0) >= 2:
            self.trigger_election(self.max_level)

    # ---------------------------------------------------------- maintenance
    def _on_KeepAlive(self, src: int, msg: KeepAlive) -> None:
        now = self.sim.now
        self.table.touch(src, now)
        self.table.merge_delta(msg.entries, now)
        if self.maintenance is not None:
            self.maintenance.on_keepalive(src, msg)

    def _on_KeepAliveAck(self, src: int, msg: KeepAliveAck) -> None:
        now = self.sim.now
        self.table.touch(src, now)
        self.table.merge_delta(msg.entries, now)
