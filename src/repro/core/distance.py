"""The tessellation-aware distance ``D(a, b)`` of §III.f.

The paper defines (transcribing the displayed formula):

* if ``lvl_a = 0``:            ``D(a, b) = d(a, b)``
* if ``d(a, b) - L / 2**(h - lvl_a) <= 0``:  ``D(a, b) = 0``
* otherwise:                   ``D(a, b) = d(a, b) - L / 2**(h - lvl_a)``

where ``d`` is the Euclidean metric of the ID space, ``L`` the extent of the
space, ``h`` the height of the hierarchy, and ``lvl_a`` the maximum level of
node *a*.  Interpretation: a node at level ``lvl_a`` owns a tessellation
cell of characteristic radius ``L / 2**(h - lvl_a)``; any target inside that
radius is "at distance zero" (the node can resolve it inside its subtree),
and beyond it only the excess distance counts.  High-level nodes therefore
look *close* to everything, which is what lets the greedy rule
"forward when ``D(n, x) <= D(a, x) / 2``" (Fig. 3) escalate through parents
in logarithmically many steps.

The greedy router's halving criterion and the TTL-triggered Euclidean
fallback live here too so every algorithm shares one implementation.
"""

from __future__ import annotations

from repro.core.ids import IdSpace


def cell_radius(space: IdSpace, height: int, level: int) -> float:
    """Characteristic tessellation radius of a level-*level* node.

    ``L / 2**(h - level)`` — grows with the level: the root's cell is half
    the space, a level-1 node's cell is ``L / 2**(h-1)``.
    """
    if level < 0:
        raise ValueError(f"level must be >= 0, got {level}")
    if height < 0:
        raise ValueError(f"height must be >= 0, got {height}")
    exponent = max(height - level, 0)
    return space.extent / float(2**exponent)


def treep_distance(
    space: IdSpace,
    a_id: int,
    a_level: int,
    b_id: int,
    height: int,
) -> float:
    """``D(a, b)`` exactly as §III.f (see module docstring).

    Parameters
    ----------
    space:
        The ID space (provides ``d`` and ``L``).
    a_id / a_level:
        Position and *maximum* level of the evaluating node ``a``.
    b_id:
        Position of the target ``b``.
    height:
        Current height ``h`` of the hierarchy.
    """
    d = float(space.distance(a_id, b_id))
    if a_level <= 0:
        return d
    radius = cell_radius(space, height, a_level)
    if d <= radius:
        return 0.0
    return d - radius


def halving_criterion(d_next: float, d_here: float) -> bool:
    """Fig. 3's forwarding test: ``D(n, x) <= D(a, x) / 2``."""
    return d_next <= 0.5 * d_here


def improves(space: IdSpace, candidate: int, here: int, target: int) -> bool:
    """NG/NGSA's progress test: candidate strictly closer to the target.

    §III.f: "returns a node n that verifies the condition
    d(a, n) - d(a, x) < 0" — i.e. the Euclidean distance to the target
    strictly decreases.
    """
    return space.distance(candidate, target) < space.distance(here, target)
