"""`TreePNetwork` — the public orchestration API.

Typical use (this is what the quickstart example does)::

    from repro import TreePNetwork, TreePConfig

    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=42)
    net.build(n=512)
    result = net.lookup_sync(origin=net.ids[0], target=net.ids[100])
    assert result.found

The network owns the simulator, the datagram fabric, and one
:class:`~repro.core.node.TreePNode` per peer.  ``build`` constructs the
paper's *steady state* directly (see :func:`repro.core.hierarchy.build_layout`)
and installs the six routing tables of §III.c on every node; the dynamic
protocol (join, keep-alives, elections, demotion) then operates on top of
that state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


from repro.core.capacity import CapacityDistribution, NodeCapacity
from repro.core.config import TreePConfig
from repro.core.hierarchy import HierarchyLayout, build_layout
from repro.core.ids import AssignStrategy, assign_ids
from repro.core.lookup import LookupAlgorithm, LookupResult
from repro.core.maintenance import MaintenanceManager
from repro.core.messages import LookupRequest
from repro.core.node import PendingLookup, TreePNode
from repro.core.tessellation import bus_neighbours, cell_owner
from repro.obs.runtime import ambient_hub
from repro.sim.engine import SimulationError, Simulator
from repro.sim.latency import LatencyModel, UniformLatency
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(slots=True)
class RequestTrail:
    """Measurement-only record of one request's progress through the overlay.

    Populated by a hop observer the harness installs on every node; routing
    never reads it.  Needed for Figure E (hop counts of *failed* lookups,
    including ones that died by black-holing into a failed node).
    """

    max_ttl: int = 0
    last_node: int = -1


class TreePNetwork:
    """A complete simulated TreeP deployment.

    Parameters
    ----------
    config:
        Overlay configuration; defaults to the paper's case 1.
    seed:
        Root seed for every random substream.
    latency:
        Datagram latency model; defaults to ``UniformLatency(5..50 ms)``.
    loss:
        Independent datagram loss probability.
    tracer:
        Optional structured tracer shared by all nodes.
    """

    def __init__(
        self,
        config: Optional[TreePConfig] = None,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.config = config if config is not None else TreePConfig.paper_case1()
        self.rng = RngRegistry(seed)
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            latency=latency if latency is not None else UniformLatency(self.rng.get("latency")),
            loss=loss,
            rng=self.rng.get("loss"),
        )
        self.tracer = tracer
        #: Observability hub (``None`` unless an ambient capture is active
        #: or an ``Observability`` service sets it); instrumentation sites
        #: guard every record behind one ``is not None`` check.
        self.obs = ambient_hub()
        obs = self.obs
        if obs is not None:
            self.sim.set_event_hook(obs.on_sim_event)
            obs.topology_source = self.topology_snapshot
        self.nodes: Dict[int, TreePNode] = {}
        self.ids: List[int] = []
        self.capacities: Dict[int, NodeCapacity] = {}
        self.layout: Optional[HierarchyLayout] = None
        self.trails: Dict[int, RequestTrail] = {}
        self._maintenance: List[MaintenanceManager] = []
        #: Callbacks invoked for every node the network creates (at build and
        #: on protocol joins); services use this to attach per-node state and
        #: register datagram handlers without monkey-patching TreePNode.
        self.node_hooks: List[Callable[[TreePNode], None]] = []

    def add_node_hook(
        self, hook: Callable[[TreePNode], None], retroactive: bool = True
    ) -> None:
        """Register *hook* to run on every current and future node.

        With ``retroactive`` (the default) the hook also runs immediately on
        every node that already exists, so a service can attach at any time.
        """
        self.node_hooks.append(hook)
        if retroactive:
            for node in self.nodes.values():
                hook(node)

    def remove_node_hook(self, hook: Callable[[TreePNode], None]) -> None:
        """Detach *hook* from future node creations (no-op when absent).

        Services call this when shut down so a discarded instance stops
        attaching per-node state to every node that joins later.
        """
        try:
            self.node_hooks.remove(hook)
        except ValueError:
            pass

    # ------------------------------------------------------ lifecycle hooks
    def add_leave_hook(self, hook: Callable[[int], None]) -> None:
        """Run *hook(ident)* whenever a live peer crash-stops.

        Thin wrapper over the fabric's liveness transition hooks, so the
        callback fires exactly once per departure regardless of the driver
        (:meth:`fail_nodes`, a failure schedule, or a direct ``set_down``).
        """
        self.network.down_hooks.append(hook)

    def remove_leave_hook(self, hook: Callable[[int], None]) -> None:
        try:
            self.network.down_hooks.remove(hook)
        except ValueError:
            pass

    def add_revive_hook(self, hook: Callable[[int], None]) -> None:
        """Run *hook(ident)* whenever a down peer is revived (``set_up``)."""
        self.network.up_hooks.append(hook)

    def remove_revive_hook(self, hook: Callable[[int], None]) -> None:
        try:
            self.network.up_hooks.remove(hook)
        except ValueError:
            pass

    # ------------------------------------------------------------ building
    def build(
        self,
        n: int,
        strategy: AssignStrategy = "random",
        capacities: Optional[Sequence[NodeCapacity]] = None,
    ) -> HierarchyLayout:
        """Create *n* peers and assemble the steady-state hierarchy."""
        if self.nodes:
            raise RuntimeError("network already built")
        ids = assign_ids(
            self.config.space,
            n,
            self.rng.get("ids"),
            strategy=strategy,
            hosts=[("10.%d.%d.%d" % (i >> 16 & 255, i >> 8 & 255, i & 255), 4000 + i % 1000)
                   for i in range(n)] if strategy == "hash" else None,
        )
        if capacities is None:
            dist = CapacityDistribution(self.rng.get("capacity"))
            capacities = dist.sample_many(n)
        elif len(capacities) != n:
            raise ValueError(f"need {n} capacities, got {len(capacities)}")
        self.ids = ids
        self.capacities = dict(zip(ids, capacities))
        self.layout = build_layout(ids, self.capacities, self.config)
        self._instantiate_nodes()
        self._install_tables(self.layout)
        return self.layout

    def build_from(
        self, ids: Sequence[int], capacities: Dict[int, NodeCapacity]
    ) -> HierarchyLayout:
        """Build from explicit IDs/capacities (deterministic tests)."""
        if self.nodes:
            raise RuntimeError("network already built")
        self.ids = list(ids)
        self.capacities = dict(capacities)
        self.layout = build_layout(self.ids, self.capacities, self.config)
        self._instantiate_nodes()
        self._install_tables(self.layout)
        return self.layout

    def _instantiate_nodes(self) -> None:
        for ident in self.ids:
            node = TreePNode(ident, self.capacities[ident], self.config, tracer=self.tracer)
            self.network.register(node)
            self.nodes[ident] = node
            node.hop_observer = self._observe_hop
            node.obs = self.obs
            for hook in self.node_hooks:
                hook(node)

    def topology_snapshot(self) -> Dict[int, int]:
        """The current tree overlay as ``{node: parent}`` (parent ``-1``
        = root).

        A node at max level *m* has its real parent at level *m*\\ +1 in
        its routing table; nodes without one (the root, or nodes mid-join)
        report ``-1``.  The observability hub samples this at finalize so
        offline analytics (sick-subtree rollups) can walk the overlay.
        """
        snapshot: Dict[int, int] = {}
        for ident, node in self.nodes.items():
            parent = node.table.parents.get(node.max_level + 1)
            snapshot[ident] = parent if parent is not None else -1
        return snapshot

    def _observe_hop(self, req: LookupRequest) -> None:
        trail = self.trails.get(req.request_id)
        if trail is None:
            trail = RequestTrail()
            self.trails[req.request_id] = trail
        if req.ttl > trail.max_ttl:
            trail.max_ttl = req.ttl
        trail.last_node = req.path[-1] if req.path else req.origin
        obs = self.obs
        if obs is not None:
            obs.lookup_hop(req.request_id, trail.last_node, self.sim.now, req.ttl)

    # ------------------------------------------------------- table install
    def _install_tables(self, layout: HierarchyLayout) -> None:
        """Populate the six §III.c tables on every node from the layout."""
        now = self.sim.now
        space = self.config.space
        h = layout.height
        level_sets = [set(b) for b in layout.levels]

        def meta_of(i: int) -> dict:
            return dict(max_level=layout.max_level[i], score=layout.scores[i],
                        nc=layout.nc[i])

        for ident, node in self.nodes.items():
            node.max_level = layout.max_level[ident]
            node.height = h
            t = node.table

            # Table 1: level-0 neighbours (min two connections).
            left, right = bus_neighbours(layout.levels[0], ident)
            for n in (left, right):
                if n is not None:
                    t.add_level0(n, now, **meta_of(n))
            # Endpoints get a second-hop link so everyone keeps degree >= 2.
            if left is None and right is not None:
                _, rr = bus_neighbours(layout.levels[0], right)
                if rr is not None:
                    t.add_level0(rr, now, **meta_of(rr))
            if right is None and left is not None:
                ll, _ = bus_neighbours(layout.levels[0], left)
                if ll is not None:
                    t.add_level0(ll, now, **meta_of(ll))

            # Table 2: per-level bus neighbourhood, direct + indirect.
            for lvl in range(1, node.max_level + 1):
                bus = layout.levels[lvl]
                l1, r1 = bus_neighbours(bus, ident)
                for n in (l1, r1):
                    if n is not None:
                        t.add_level(lvl, n, now, **meta_of(n))
                if l1 is not None:
                    l2, _ = bus_neighbours(bus, l1)
                    if l2 is not None:
                        t.add_level(lvl, l2, now, **meta_of(l2))
                if r1 is not None:
                    _, r2 = bus_neighbours(bus, r1)
                    if r2 is not None:
                        t.add_level(lvl, r2, now, **meta_of(r2))
                # "parents of level i of its direct neighbours at level 0"
                for n0 in (left, right):
                    if n0 is not None:
                        p = cell_owner(space, bus, n0)
                        if p != ident:
                            t.add_level(lvl, p, now, **meta_of(p))
                # "direct neighbours of level 0 that belong to the same level i"
                for n0 in (left, right):
                    if n0 is not None and n0 in level_sets[lvl]:
                        t.add_level(lvl, n0, now, **meta_of(n0))

            # Table 3: own children + children of direct bus neighbours.
            for lvl in range(1, node.max_level + 1):
                kids = layout.children.get((ident, lvl), [])
                node.children_by_level[lvl] = list(kids)
                for k in kids:
                    t.add_child(k, now, **meta_of(k))
                bus = layout.levels[lvl]
                for nb in bus_neighbours(bus, ident):
                    if nb is not None:
                        for k in layout.children.get((nb, lvl), []):
                            t.add_neighbour_child(k, now, **meta_of(k))

            # Tables 4/6: parents. A node at max level m has its real parent
            # at level m+1; below that it covers itself.
            p = layout.parent.get(ident)
            if p is not None and p != ident:
                t.set_parent(node.max_level + 1, p, now, **meta_of(p))

            # Table 5: superior-node list — ancestors + parent's neighbours.
            for anc in layout.ancestors(ident):
                if anc != ident:
                    t.add_superior(anc, now, **meta_of(anc))
            if p is not None and p != ident and layout.max_level.get(p, 0) > 0:
                pbus = layout.levels[layout.max_level[p]]
                for pn in bus_neighbours(pbus, p):
                    if pn is not None and pn != ident:
                        t.add_superior(pn, now, **meta_of(pn))

    def live_origin(self, via: Optional[int] = None) -> TreePNode:
        """The node client requests should enter through.

        *via* selects a specific node (it must be live — a down node would
        silently drop every outbound datagram and the client would pump its
        whole deadline for nothing); otherwise the first live peer is used.
        Shared by the service facades (DHT, replicated storage).
        """
        if via is not None:
            if not self.network.is_up(via):
                raise ValueError(f"origin {via} is down")
            return self.nodes[via]
        for i in self.ids:
            if self.network.is_up(i):
                return self.nodes[i]
        raise RuntimeError("no live node to issue the request from")

    #: Abandoned request ids remembered per reply sink (oldest dropped).
    ABANDONED_CAP = 4096

    def pump_until_reply(
        self,
        replies: Dict[int, object],
        abandoned: Dict[int, None],
        rid: int,
        timeout: float,
        settle: float = 0.2,
    ):
        """Run the sim until *rid*'s reply lands in *replies*, the event
        queue empties, or *timeout* virtual seconds pass.

        The synchronous-client pump shared by the service facades.  A plain
        ``drain()`` would never return while any periodic timer (keep-
        alives, anti-entropy) keeps re-arming itself; the deadline bounds a
        black-holed request instead.  On success the sim runs *settle*
        further virtual seconds so the request's trailing datagrams (extra
        replicas, read repair) land; on timeout the rid is remembered in
        *abandoned* (insertion-ordered, capped) so a straggler reply is
        discarded instead of accreting in the sink.
        """
        sim = self.sim
        deadline = sim.now + timeout
        while rid not in replies and sim.now < deadline:
            if sim.max_events is not None and sim.events_processed >= sim.max_events:
                raise SimulationError(
                    f"pump for request {rid} exceeded max_events={sim.max_events}; "
                    "runaway same-time event cycle?"
                )
            if not sim.step():
                break
        reply = replies.pop(rid, None)
        if reply is None:
            abandoned[rid] = None
            while len(abandoned) > self.ABANDONED_CAP:
                abandoned.pop(next(iter(abandoned)))
        else:
            sim.run(until=sim.now + settle)
        return reply

    # ------------------------------------------------------------- lookups
    def lookup(
        self,
        origin: int,
        target: int,
        algo: LookupAlgorithm | str = LookupAlgorithm.GREEDY,
    ) -> PendingLookup:
        """Issue an asynchronous lookup; drain the sim to complete it."""
        if origin not in self.nodes:
            raise KeyError(f"unknown origin {origin}")
        return self.nodes[origin].issue_lookup(target, algo)

    def lookup_sync(
        self,
        origin: int,
        target: int,
        algo: LookupAlgorithm | str = LookupAlgorithm.GREEDY,
    ) -> LookupResult:
        """Issue one lookup and run the simulation until it completes."""
        pend = self.lookup(origin, target, algo)
        self.sim.drain()
        assert pend.result is not None
        return pend.result

    def run_lookup_batch(
        self,
        pairs: Iterable[Tuple[int, int]],
        algo: LookupAlgorithm | str = LookupAlgorithm.GREEDY,
    ) -> List[LookupResult]:
        """Issue many lookups, drain, and return their results in order."""
        pending = [self.lookup(o, t, algo) for o, t in pairs]
        self.sim.drain()
        out = []
        for p in pending:
            assert p.result is not None, "drain left a lookup unresolved"
            out.append(p.result)
        return out

    # ------------------------------------------------------------ failures
    def fail_nodes(self, idents: Iterable[int]) -> None:
        """Crash-stop the given peers (no repair — the paper's stress test).

        Attached services (see :mod:`repro.cluster`) observe each departure
        through the fabric's liveness hooks: their node-scoped periodic
        tasks are cancelled and their ``on_node_leave`` callbacks run.
        """
        for i in idents:
            self.network.set_down(i)

    def revive_nodes(self, idents: Iterable[int]) -> None:
        """Bring crash-stopped peers back up (same process, state intact).

        The inverse of :meth:`fail_nodes`; attached services re-install
        their datagram handlers and re-arm node-scoped periodic tasks via
        their ``on_node_revive`` callbacks.
        """
        for i in idents:
            self.network.set_up(i)

    def alive_ids(self) -> List[int]:
        return [i for i in self.ids if self.network.is_up(i)]

    # --------------------------------------------------------- maintenance
    def start_maintenance(self) -> None:
        """Arm keep-alive loops on every live node."""
        for node in self.nodes.values():
            mm = node.maintenance or MaintenanceManager(node)
            mm.start()
            if mm not in self._maintenance:
                self._maintenance.append(mm)

    def stop_maintenance(self) -> None:
        for mm in self._maintenance:
            mm.stop()

    # --------------------------------------------------------------- churn
    def join_new_node(
        self,
        ident: int,
        capacity: Optional[NodeCapacity] = None,
        via: Optional[int] = None,
    ) -> TreePNode:
        """Protocol-driven join of a brand-new peer through *via*."""
        if ident in self.nodes:
            raise ValueError(f"id {ident} already in the network")
        self.config.space.validate(ident)
        cap = capacity if capacity is not None else NodeCapacity()
        node = TreePNode(ident, cap, self.config, tracer=self.tracer)
        self.network.register(node)
        self.nodes[ident] = node
        self.capacities[ident] = cap
        self.ids.append(ident)
        node.hop_observer = self._observe_hop
        node.obs = self.obs
        for hook in self.node_hooks:
            hook(node)
        bootstrap = via if via is not None else next(
            i for i in self.ids if i != ident and self.network.is_up(i)
        )
        node.join_via(bootstrap)
        return node

    # ------------------------------------------------------------- metrics
    def routing_table_sizes(self) -> Dict[int, int]:
        return {i: n.table.size() for i, n in self.nodes.items()}

    def active_connection_counts(self) -> Dict[int, int]:
        return {i: len(n.table.active_connections()) for i, n in self.nodes.items()}

    @property
    def height(self) -> int:
        if self.layout is None:
            raise RuntimeError("network not built")
        return self.layout.height
