"""Configuration knobs of a TreeP deployment.

Collected in one frozen dataclass so experiments can describe a whole
configuration declaratively and ablations can vary exactly one field.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from repro.core.ids import IdSpace

NcMode = Literal["fixed", "variable"]
DemotionPolicy = Literal["strict", "keep-upper"]


@dataclass(frozen=True)
class TreePConfig:
    """Everything tunable about a TreeP overlay.

    Attributes
    ----------
    space:
        The 1-D ID space.
    nc_mode:
        ``fixed`` — every parent accepts at most :attr:`nc_fixed` children
        (paper case 1). ``variable`` — per-node capacity-derived maximum
        (paper case 2).
    nc_fixed:
        The fixed maximum-children value (paper uses 4).
    nc_floor / nc_ceiling:
        Bounds for the variable mode.
    max_height:
        Safety bound on hierarchy height (levels above 0).
    min_level0_connections:
        Paper: each node maintains a minimum of two level-0 connections.
    ttl_max:
        Lookup TTL cap (paper: 255).
    keepalive_interval:
        Seconds between keep-alive exchanges on active connections.
    entry_ttl:
        Routing-table entry staleness bound; entries older than this are
        expired lazily (paper §III.c: timestamped entries, deleted on
        expiry).
    election_base:
        Base countdown duration for promotion elections (§III.b).
    demotion_base:
        Base countdown for under-filled parents.
    demotion_policy:
        ``strict`` — paper default: a parent with < 2 children at countdown
        expiry is demoted. ``keep-upper`` — §VI future-work variant: nodes at
        level > 1 keep their status even with no children.
    euclidean_fallback:
        When a request's TTL exceeds the hierarchy height, route on plain
        Euclidean distance (§III.f); disabling this is an ablation.
    lookup_timeout:
        Origin-side timeout after which an unanswered lookup counts failed.
    """

    space: IdSpace = field(default_factory=IdSpace)
    nc_mode: NcMode = "fixed"
    nc_fixed: int = 4
    nc_floor: int = 2
    nc_ceiling: int = 8
    max_height: int = 12
    min_level0_connections: int = 2
    ttl_max: int = 255
    keepalive_interval: float = 5.0
    entry_ttl: float = 30.0
    election_base: float = 1.0
    demotion_base: float = 5.0
    demotion_policy: DemotionPolicy = "strict"
    euclidean_fallback: bool = True
    lookup_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.nc_fixed < 2:
            raise ValueError(f"nc_fixed must be >= 2, got {self.nc_fixed}")
        if not 2 <= self.nc_floor <= self.nc_ceiling:
            raise ValueError(
                f"need 2 <= nc_floor <= nc_ceiling, got {self.nc_floor}, {self.nc_ceiling}"
            )
        if self.max_height < 1:
            raise ValueError(f"max_height must be >= 1, got {self.max_height}")
        if self.min_level0_connections < 2:
            raise ValueError("paper requires a minimum of two level-0 connections")
        if not 1 <= self.ttl_max <= 255:
            raise ValueError(f"ttl_max must be in [1, 255], got {self.ttl_max}")
        for name in ("keepalive_interval", "entry_ttl", "election_base",
                     "demotion_base", "lookup_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")

    # Convenience constructors for the paper's two experimental cases.
    @staticmethod
    def paper_case1(**overrides: object) -> "TreePConfig":
        """Case 1 (§IV.a): fixed ``nc = 4``."""
        return replace(TreePConfig(nc_mode="fixed", nc_fixed=4), **overrides)  # type: ignore[arg-type]

    @staticmethod
    def paper_case2(**overrides: object) -> "TreePConfig":
        """Case 2 (§IV.b): capacity-derived variable ``nc``."""
        return replace(TreePConfig(nc_mode="variable"), **overrides)  # type: ignore[arg-type]

    def with_(self, **overrides: object) -> "TreePConfig":
        """Functional update, for ablations."""
        return replace(self, **overrides)  # type: ignore[arg-type]
