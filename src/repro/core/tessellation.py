"""1-D tessellation (Voronoi) math over level buses.

A level ``j > 0`` of TreeP is a *bus*: its nodes sorted by ID, each linked to
its left/right neighbour.  Every bus node owns the **cell** of the 1-D space
between the midpoints towards its neighbours (endpoints extend to the edges
of the space).  A node's children at level ``j-1`` are exactly the nodes
whose IDs fall inside its cell — that is the "tessellation" of §III.a and
Figure 1.

All functions operate on plain sorted ID lists so they are reusable by the
builder, the protocol engine and the property tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.ids import IdSpace


@dataclass(frozen=True)
class Cell:
    """Half-open interval ``[lo, hi)`` of the space owned by *owner*."""

    owner: int
    lo: int
    hi: int

    def __contains__(self, ident: int) -> bool:
        return self.lo <= ident < self.hi

    def width(self) -> int:
        return self.hi - self.lo


def cells_of_bus(space: IdSpace, bus: Sequence[int]) -> List[Cell]:
    """Tessellate the space among the sorted IDs of *bus*.

    Boundaries are midpoints between consecutive bus nodes; the first and
    last cells extend to the space edges.  The cells partition
    ``[0, extent)`` exactly (adjacent cells share boundaries, no gaps, no
    overlaps) — a property test asserts this invariant.
    """
    if not bus:
        raise ValueError("bus must be non-empty")
    ids = list(bus)
    if any(ids[i] >= ids[i + 1] for i in range(len(ids) - 1)):
        raise ValueError("bus must be strictly sorted by ID")
    if not space.contains(ids[0]) or not space.contains(ids[-1]):
        raise ValueError("bus IDs outside the space")

    cells: List[Cell] = []
    lo = 0
    for i, owner in enumerate(ids):
        hi = space.extent if i == len(ids) - 1 else space.midpoint(ids[i], ids[i + 1]) + 1
        cells.append(Cell(owner=owner, lo=lo, hi=hi))
        lo = hi
    return cells


def cell_owner(space: IdSpace, bus: Sequence[int], ident: int) -> int:
    """The bus node whose cell contains *ident* — i.e. the closest one.

    O(log |bus|) via bisection; ties broken towards the lower ID, matching
    :func:`cells_of_bus` (midpoint belongs to the left cell).
    """
    if not bus:
        raise ValueError("bus must be non-empty")
    space.validate(ident)
    idx = bisect.bisect_left(bus, ident)
    if idx == 0:
        return bus[0]
    if idx == len(bus):
        return bus[-1]
    left, right = bus[idx - 1], bus[idx]
    # Left cell is [.., midpoint]; midpoint+1 starts the right cell.
    return left if ident <= space.midpoint(left, right) else right


def bus_neighbours(bus: Sequence[int], ident: int) -> tuple[Optional[int], Optional[int]]:
    """Left and right bus neighbours of *ident* (``None`` at endpoints)."""
    idx = bisect.bisect_left(bus, ident)
    if idx >= len(bus) or bus[idx] != ident:
        raise ValueError(f"{ident} not on the bus")
    left = bus[idx - 1] if idx > 0 else None
    right = bus[idx + 1] if idx < len(bus) - 1 else None
    return left, right


def children_of(space: IdSpace, bus: Sequence[int], lower_level: Sequence[int]) -> dict[int, List[int]]:
    """Partition *lower_level* IDs among the cells of *bus*.

    Returns ``{parent_id: sorted children ids}``.  Every parent appears in
    the result (possibly with an empty list); every lower-level ID is
    assigned to exactly one parent.  Linear merge — O(|bus| + |lower|);
    *lower_level* must be sorted ascending.
    """
    if not bus:
        raise ValueError("bus must be non-empty")
    if any(lower_level[i] > lower_level[i + 1] for i in range(len(lower_level) - 1)):
        raise ValueError("lower_level must be sorted ascending")
    out: dict[int, List[int]] = {p: [] for p in bus}
    cells = cells_of_bus(space, bus)
    ci = 0
    for ident in lower_level:
        while ident >= cells[ci].hi:
            ci += 1
        out[cells[ci].owner].append(ident)
    return out


def split_point(children: Sequence[int]) -> int:
    """Index at which an over-full cell is split (B-tree style median)."""
    if len(children) < 2:
        raise ValueError("cannot split fewer than 2 children")
    return len(children) // 2
