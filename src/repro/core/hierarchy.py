"""Hierarchy construction and maintenance.

Two halves:

* :func:`build_layout` — deterministic *steady-state* construction of the
  full TreeP hierarchy from a node population.  The paper evaluates TreeP
  "when the system reaches its steady state"; this builder produces exactly
  such a state (every level a sorted bus, every cell within its parent's
  ``nc`` bound, parents the highest-capacity members of their cells — the
  fixed point the countdown elections converge to).  Experiments start here
  and then stress the topology.
* :class:`ElectionManager` / :class:`DemotionManager` — the *dynamic*
  countdown protocols of §III.b used by the live protocol engine
  (:mod:`repro.core.node`) when nodes join, leave or fail.

The builder enforces the tessellation invariant (children are exactly the
nodes inside the parent's 1-D Voronoi cell) by iterated refinement: seed
parents greedily, assign children by cells, then split over-full cells by
promoting their best child until every cell respects ``nc``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.capacity import NodeCapacity
from repro.core.config import TreePConfig
from repro.core.tessellation import cell_owner, children_of


@dataclass
class HierarchyLayout:
    """The complete steady-state structure of a TreeP overlay.

    Attributes
    ----------
    levels:
        ``levels[0]`` is the sorted list of all IDs; ``levels[j]`` (j > 0)
        the sorted bus of level *j*.  ``len(levels) - 1`` is the height.
    max_level:
        Highest level of each node.
    parent:
        ``parent[(ident, j)]`` is the level-(j+1) cell owner covering
        *ident*'s position on bus *j* — only stored for ``j = max_level``
        (below that a node covers itself).
    children:
        ``children[(parent, j)]`` — IDs on bus ``j-1`` inside the parent's
        level-``j`` cell, excluding the parent itself.
    nc:
        Effective maximum-children bound used for each node.
    """

    levels: List[List[int]]
    max_level: Dict[int, int]
    parent: Dict[int, Optional[int]]
    children: Dict[tuple[int, int], List[int]]
    nc: Dict[int, int]
    scores: Dict[int, float]

    @property
    def height(self) -> int:
        """Number of levels above 0 — the paper's ``h``."""
        return len(self.levels) - 1

    def bus(self, level: int) -> List[int]:
        return self.levels[level]

    def ancestors(self, ident: int) -> List[int]:
        """The superior chain of *ident* (Figure 2), nearest first."""
        out: List[int] = []
        cur: Optional[int] = self.parent.get(ident)
        seen = {ident}
        while cur is not None and cur not in seen:
            out.append(cur)
            seen.add(cur)
            cur = self.parent.get(cur)
        return out

    def average_children(self) -> float:
        counts = [len(v) for v in self.children.values()]
        return float(np.mean(counts)) if counts else 0.0

    def validate(self, config: TreePConfig) -> None:
        """Assert every structural invariant; raises ``AssertionError``."""
        space = config.space
        for j, bus in enumerate(self.levels):
            assert bus == sorted(bus), f"level {j} bus not sorted"
            assert len(set(bus)) == len(bus), f"level {j} bus has duplicates"
        for j in range(1, len(self.levels)):
            upper, lower = set(self.levels[j]), set(self.levels[j - 1])
            assert upper <= lower, f"level {j} not a subset of level {j-1}"
        for (p, j), kids in self.children.items():
            assert p in self.levels[j], f"parent {p} not on bus {j}"
            limit = self.nc[p]
            assert len(kids) <= limit, (
                f"parent {p} at level {j} has {len(kids)} children > nc={limit}"
            )
            for k in kids:
                assert cell_owner(space, self.levels[j], k) == p, (
                    f"child {k} not in cell of {p} at level {j}"
                )


def _effective_nc(config: TreePConfig, cap: NodeCapacity) -> int:
    if config.nc_mode == "fixed":
        return config.nc_fixed
    return cap.max_children(floor=config.nc_floor, ceiling=config.nc_ceiling)


def _seed_parents(
    bus: Sequence[int],
    scores: Dict[int, float],
    nc_of: Dict[int, int],
) -> List[int]:
    """Greedy sweep: pick one parent per contiguous group.

    Walk the bus left to right; look at the next window of nodes, choose the
    highest-score one as parent, and size the group by *that* parent's
    ``nc``.  This is the deterministic analogue of "the node with the
    shortest countdown wins the election in its neighbourhood".
    """
    parents: List[int] = []
    i = 0
    n = len(bus)
    while i < n:
        # Pick the best-score node in a bounded look-ahead window.
        window = bus[i : i + 8]
        p = max(window, key=lambda b: (scores[b], -b))
        size = max(2, min(nc_of[p], n - i))
        group = bus[i : i + size]
        if p not in group:
            p = max(group, key=lambda b: (scores[b], -b))
        parents.append(p)
        i += size
    return sorted(parents)


def _split_overfull(
    space_cfg: TreePConfig,
    bus_lower: Sequence[int],
    parents: List[int],
    scores: Dict[int, float],
    nc_of: Dict[int, int],
) -> tuple[List[int], Dict[int, List[int]]]:
    """Assign children by tessellation; promote best children until no cell
    exceeds its owner's ``nc``.  Returns (final sorted bus, children map
    *excluding* the parent itself from its own cell)."""
    space = space_cfg.space
    bus = sorted(parents)
    for _ in range(len(bus_lower) + 1):  # each pass adds >= 1 parent; bounded
        assignment = children_of(space, bus, list(bus_lower))
        overfull = []
        for p, members in assignment.items():
            kids = [m for m in members if m != p]
            if len(kids) > nc_of[p]:
                overfull.append((p, kids))
        if not overfull:
            return bus, {
                p: [m for m in members if m != p]
                for p, members in assignment.items()
            }
        for p, kids in overfull:
            # Promote the highest-capacity child — B-tree-style cell split.
            promoted = max(kids, key=lambda b: (scores[b], -b))
            bus.append(promoted)
        bus = sorted(set(bus))
    raise RuntimeError("cell splitting did not converge")  # pragma: no cover


def build_layout(
    ids: Sequence[int],
    capacities: Dict[int, NodeCapacity],
    config: TreePConfig,
) -> HierarchyLayout:
    """Construct the steady-state hierarchy for *ids*.

    Parameters
    ----------
    ids:
        Node IDs (any order, must be distinct and inside the space).
    capacities:
        Capability vector per ID — drives parent choice and variable ``nc``.
    config:
        The overlay configuration (nc mode, height bound, …).
    """
    if len(ids) < 2:
        raise ValueError("a TreeP network needs at least 2 nodes")
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate node IDs")
    for i in ids:
        config.space.validate(i)

    scores = {i: capacities[i].score() for i in ids}
    nc_of = {i: _effective_nc(config, capacities[i]) for i in ids}

    levels: List[List[int]] = [sorted(ids)]
    children: Dict[tuple[int, int], List[int]] = {}

    while len(levels[-1]) > 1 and len(levels) - 1 < config.max_height:
        lower = levels[-1]
        j = len(levels)  # level being built
        seeds = _seed_parents(lower, scores, nc_of)
        if len(seeds) >= len(lower):
            # Cannot shrink further (e.g. 2 nodes, both seeded): promote one.
            seeds = [max(lower, key=lambda b: (scores[b], -b))]
        bus, kids_map = _split_overfull(config, lower, seeds, scores, nc_of)
        if len(bus) >= len(lower):
            break  # no progress; stop growing
        for p, kids in kids_map.items():
            children[(p, j)] = kids
        levels.append(bus)

    max_level = {i: 0 for i in ids}
    for j in range(1, len(levels)):
        for i in levels[j]:
            max_level[i] = j

    parent: Dict[int, Optional[int]] = {}
    for i in ids:
        m = max_level[i]
        if m + 1 < len(levels):
            parent[i] = cell_owner(config.space, levels[m + 1], i)
        else:
            parent[i] = None

    return HierarchyLayout(
        levels=levels,
        max_level=max_level,
        parent=parent,
        children=children,
        nc=nc_of,
        scores=scores,
    )


def theoretical_height(n: int, c: float) -> float:
    """§III.e: ``h = log_c((n + 1) / 2)`` for average children *c*."""
    if n < 1 or c <= 1:
        raise ValueError("need n >= 1 and c > 1")
    return float(np.log((n + 1) / 2.0) / np.log(c))


# --------------------------------------------------------------------------
# dynamic countdown protocols (§III.b)
# --------------------------------------------------------------------------

@dataclass
class Election:
    """State of one running parent election on a level-0 neighbourhood."""

    level: int
    participants: List[int] = field(default_factory=list)
    winner: Optional[int] = None
    resolved: bool = False


class ElectionManager:
    """Per-node election bookkeeping.

    The owning node participates in at most one election per level at a
    time.  ``countdown`` is computed from the node's capacity (shorter for
    stronger nodes); the protocol engine schedules the expiry event and
    calls :meth:`on_countdown_expired`.
    """

    def __init__(self, ident: int, capacity: NodeCapacity, config: TreePConfig) -> None:
        self.ident = ident
        self.capacity = capacity
        self.config = config
        self.active: Dict[int, Election] = {}

    def start(self, level: int, participants: Sequence[int]) -> float:
        """Join/trigger an election; returns this node's countdown."""
        if level in self.active and not self.active[level].resolved:
            return -1.0  # already participating
        self.active[level] = Election(level=level, participants=list(participants))
        return self.capacity.promotion_countdown(base=self.config.election_base)

    def on_claim(self, level: int, winner: int) -> None:
        """Another node claimed parenthood first."""
        e = self.active.get(level)
        if e is not None and not e.resolved:
            e.winner = winner
            e.resolved = True

    def on_countdown_expired(self, level: int) -> bool:
        """Returns True when this node wins (nobody claimed earlier)."""
        e = self.active.get(level)
        if e is None or e.resolved:
            return False
        e.winner = self.ident
        e.resolved = True
        return True


class DemotionManager:
    """Countdown of an under-filled parent (§III.b).

    Higher capacity → *longer* countdown; on expiry with still < 2 children
    the node abdicates, unless the ``keep-upper`` future-work policy applies.
    """

    def __init__(self, ident: int, capacity: NodeCapacity, config: TreePConfig) -> None:
        self.ident = ident
        self.capacity = capacity
        self.config = config
        self.pending: Dict[int, bool] = {}

    def countdown(self) -> float:
        return self.capacity.demotion_countdown(base=self.config.demotion_base)

    def should_demote(self, level: int, child_count: int) -> bool:
        if child_count >= 2:
            return False
        if self.config.demotion_policy == "keep-upper" and level > 1:
            return False
        return True
