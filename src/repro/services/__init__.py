"""Services layered on the TreeP overlay.

The paper positions TreeP as the P2P substrate of the DGET grid middleware,
providing "resource discovery and load-balancing" (§I) and notes the overlay
"can be easily modified to provide Distributed Hash Table (DHT)
functionality".  This package builds those three consumers:

* :mod:`repro.services.dht` — simple key/value storage with replication,
  keys hashed into the TreeP ID space and resolved by the overlay's own
  lookup (for durable quorum storage see :mod:`repro.storage`).
* :mod:`repro.services.discovery` — attribute-constrained resource
  discovery walking the capacity aggregates of the hierarchy.
* :mod:`repro.services.loadbalance` — capacity-aware task placement using
  the same aggregates.

All three implement the :class:`~repro.cluster.service.Service` lifecycle
protocol; construct them through :class:`repro.cluster.Cluster`
(``with_dht`` / ``with_discovery`` / ``with_loadbalance``) — the direct
``*(net)`` constructors remain as deprecation shims.
"""

from repro.services.dht import TreePDht
from repro.services.discovery import ResourceDirectory
from repro.services.loadbalance import LoadBalancer

__all__ = ["LoadBalancer", "ResourceDirectory", "TreePDht"]
