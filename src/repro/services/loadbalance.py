"""Capacity-aware load balancing on the TreeP hierarchy.

The paper's motivation (§I, §V): the resource-oriented hierarchy lets the
middleware "take advantage of the different peers' characteristics" and
"rapidly adapt to different situations (load balancing, failures, network
traffic)".  This module implements the natural placement scheme on that
structure: a task enters at any peer and is routed down the hierarchy, at
each step into the child subtree with the most *remaining* capacity, until
it lands on a leaf-level peer — the tree analogue of least-loaded-of-``d``
placement.

Load is tracked as CPU-share units against each node's ``cpu`` capability;
the balancer keeps **cached** subtree totals, incrementally updated on
assign/release along the node's ancestor chain, so each routing decision is
O(children + height) — independent of subtree size.  Liveness changes
(failures, joins) invalidate the cache; it is rebuilt lazily on the next
placement (or eagerly via :meth:`LoadBalancer.refresh`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.registry import attach_service
from repro.cluster.service import Service, ServiceContext, warn_direct_wire
from repro.core.treep import TreePNetwork

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import TreePNode


@dataclass(frozen=True)
class Task:
    """One unit of placeable work."""

    task_id: int
    cpu_demand: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_demand <= 0:
            raise ValueError(f"cpu_demand must be > 0, got {self.cpu_demand}")


@dataclass
class Placement:
    task: Task
    node: Optional[int]
    hops: int


class LoadBalancer(Service):
    """Hierarchical least-loaded placement over a built TreeP network.

    Construct through :meth:`repro.cluster.Cluster.with_loadbalance`;
    ``LoadBalancer(net)`` remains as a deprecation shim.
    """

    name = "loadbalance"

    def __init__(self, net: Optional[TreePNetwork] = None) -> None:
        super().__init__()
        self.net: Optional[TreePNetwork] = None
        #: CPU-share units currently assigned per node.
        self.assigned: Dict[int, float] = {}
        self.placements: List[Placement] = []
        #: Cached subtree headroom, keyed by node id (the subtree rooted at
        #: the node's own max level — the only shape placement queries).
        self._subtree: Dict[int, float] = {}
        #: Per-node ancestor chain whose cached totals contain the node.
        self._chains: Dict[int, Tuple[int, ...]] = {}
        self._liveness_key: Tuple[int, int] = (-1, -1)
        if net is not None:
            if net.layout is None:
                raise RuntimeError("network must be built first")
            warn_direct_wire("LoadBalancer(net)", "Cluster.with_loadbalance()")
            attach_service(net, self)

    # ------------------------------------------------------------ lifecycle
    def on_attach(self, ctx: ServiceContext) -> None:
        if ctx.net.layout is None:
            raise RuntimeError("network must be built first")
        self.net = ctx.net
        self.assigned = {i: 0.0 for i in ctx.net.ids}
        self.refresh()

    def setup_node(self, node: "TreePNode") -> None:
        self.assigned.setdefault(node.ident, 0.0)

    # ------------------------------------------------------------- capacity
    def headroom(self, ident: int) -> float:
        """Remaining CPU capacity of one node (>= 0)."""
        cap = self.net.capacities[ident]
        return max(0.0, cap.effective_cpu - self.assigned[ident])

    def _recompute_subtree(self, node_id: int, lvl: int) -> float:
        """Reference recursion (O(subtree)); the cache must always agree."""
        layout = self.net.layout
        assert layout is not None
        total = self.headroom(node_id) if self.net.network.is_up(node_id) else 0.0
        if lvl == 0:
            return total
        for c in layout.children.get((node_id, lvl), ()):
            total += self._recompute_subtree(c, lvl - 1 if lvl > 1 else 0)
        return total

    def _current_liveness_key(self) -> Tuple[int, int]:
        # The epoch counts every individual crash/revival, so an equal
        # number of failures and rejoins between placements cannot alias.
        return (len(self.net.nodes), self.net.network.liveness_epoch)

    def refresh(self) -> None:
        """Rebuild the cached subtree totals (after failures or joins).

        One bottom-up pass over the layout — children always sit one level
        below their parent, so processing nodes in increasing max-level
        order sees every child total before its parent needs it.
        """
        layout = self.net.layout
        assert layout is not None
        for i in self.net.ids:
            self.assigned.setdefault(i, 0.0)
        up = self.net.network.is_up
        self._subtree = {}
        for i in sorted(layout.max_level, key=layout.max_level.__getitem__):
            lvl = layout.max_level[i]
            total = self.headroom(i) if up(i) else 0.0
            if lvl > 0:
                for c in layout.children.get((i, lvl), ()):
                    total += self._subtree.get(c, 0.0)
            self._subtree[i] = total
        self._chains = {}
        for i in layout.max_level:
            chain = [i]
            cur = i
            while True:
                p = layout.parent.get(cur)
                if (p is None or p == cur or p not in layout.max_level
                        or layout.max_level[p] != layout.max_level[cur] + 1):
                    # A parent whose own level sits higher than cur+1 folds
                    # only its top-level cell: cur's total is invisible to
                    # it (matching the reference recursion).
                    break
                chain.append(p)
                cur = p
            self._chains[i] = tuple(chain)
        self._liveness_key = self._current_liveness_key()

    def _sync_cache(self) -> None:
        if self._current_liveness_key() != self._liveness_key:
            self.refresh()

    def _shift(self, node: int, old_headroom: float) -> None:
        """Propagate one node's headroom change up its ancestor chain."""
        delta = self.headroom(node) - old_headroom
        if delta == 0.0 or not self.net.network.is_up(node):
            return
        for a in self._chains.get(node, (node,)):
            if a in self._subtree:
                self._subtree[a] += delta

    def _assign(self, node: int, demand: float) -> None:
        old = self.headroom(node)
        self.assigned[node] += demand
        self._shift(node, old)

    # ------------------------------------------------------------ placement
    def place(self, task: Task, origin: Optional[int] = None) -> Placement:
        """Route *task* down the hierarchy to a live peer with headroom."""
        net = self.net
        layout = net.layout
        assert layout is not None
        self._sync_cache()
        hops = 0

        if origin is None:
            origin = next(i for i in net.ids if net.network.is_up(i))

        # Ascend to the root (placement decisions start from the widest view).
        chain = [origin] + layout.ancestors(origin)
        cur = chain[-1]
        hops += len(chain) - 1
        lvl = layout.max_level.get(cur, 0)

        while True:
            candidates: List[Tuple[float, int, int]] = []
            if net.network.is_up(cur) and self.headroom(cur) >= task.cpu_demand:
                candidates.append((self.headroom(cur), cur, -1))
            if lvl > 0:
                for c in layout.children.get((cur, lvl), ()):
                    h = self._subtree.get(c, 0.0)
                    if h >= task.cpu_demand:
                        candidates.append((h, c, lvl - 1))
            if not candidates:
                placement = Placement(task=task, node=None, hops=hops)
                self.placements.append(placement)
                return placement
            candidates.sort(reverse=True)
            best_h, best_id, best_lvl = candidates[0]
            if best_lvl == -1 or best_id == cur:
                # The current node itself wins: place here.
                self._assign(best_id, task.cpu_demand)
                placement = Placement(task=task, node=best_id, hops=hops)
                self.placements.append(placement)
                return placement
            hops += 1
            cur, lvl = best_id, best_lvl
            if lvl == 0:
                if net.network.is_up(cur) and self.headroom(cur) >= task.cpu_demand:
                    self._assign(cur, task.cpu_demand)
                    placement = Placement(task=task, node=cur, hops=hops)
                    self.placements.append(placement)
                    return placement
                placement = Placement(task=task, node=None, hops=hops)
                self.placements.append(placement)
                return placement

    def place_many(self, tasks: List[Task], origin: Optional[int] = None) -> List[Placement]:
        return [self.place(t, origin) for t in tasks]

    def release(self, task: Task, node: int) -> None:
        """Return a finished task's share to its node."""
        self._sync_cache()
        old = self.headroom(node)
        self.assigned[node] = max(0.0, self.assigned[node] - task.cpu_demand)
        self._shift(node, old)

    # -------------------------------------------------------------- metrics
    def utilisation(self) -> Dict[int, float]:
        """Assigned / effective capacity per live node."""
        out = {}
        for i in self.net.ids:
            if not self.net.network.is_up(i):
                continue
            eff = self.net.capacities[i].effective_cpu
            out[i] = self.assigned[i] / eff if eff > 0 else 0.0
        return out

    def imbalance(self) -> float:
        """Coefficient of variation of utilisation — 0 is perfectly even."""
        u = np.array(list(self.utilisation().values()))
        if u.size == 0 or float(np.mean(u)) == 0.0:
            return 0.0
        return float(np.std(u) / np.mean(u))
