"""Grid resource discovery on the TreeP hierarchy (the DGET use case).

On first contact peers exchange "information about their resources and
state: hardware, network capacity, current CPU load, network load" (§III.d),
so every parent can maintain an **aggregate** of the capabilities available
in its subtree.  A query for "a node with >= 4 CPUs, >= 8 GB and >= 50
Mbit/s" then walks the tree: ascend until an ancestor's aggregate covers the
constraints, descend only into subtrees whose aggregates still match, and
stop after ``max_results`` hits — O(log n + results) instead of flooding.

:class:`ResourceDirectory` implements exactly that walk over a built
network.  Aggregates are (re)computed bottom-up from the hierarchy layout —
the steady-state equivalent of parents folding their children's
ChildReports; :meth:`refresh` replays it after churn.  As a
:class:`~repro.cluster.service.Service` the directory also *watches* churn:
join/leave/revive callbacks mark the aggregates stale and the next query
resyncs them, so `Cluster`-driven churn no longer needs manual refresh
calls (explicit :meth:`refresh` still works and is still exact).

Construct through :meth:`repro.cluster.Cluster.with_discovery` (or let
``with_compute`` pull it in); ``ResourceDirectory(net)`` remains as a
deprecation shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.cluster.registry import attach_service
from repro.cluster.service import Service, ServiceContext, warn_direct_wire
from repro.core.capacity import NodeCapacity
from repro.core.treep import TreePNetwork

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import TreePNode


@dataclass(frozen=True)
class Constraint:
    """Minimum-capability requirements of a grid job."""

    min_cpu: float = 0.0
    min_memory_gb: float = 0.0
    min_bandwidth_mbps: float = 0.0
    min_storage_gb: float = 0.0
    max_cpu_load: float = 1.0

    def admits(self, cap: NodeCapacity) -> bool:
        return (
            cap.cpu >= self.min_cpu
            and cap.memory_gb >= self.min_memory_gb
            and cap.bandwidth_mbps >= self.min_bandwidth_mbps
            and cap.storage_gb >= self.min_storage_gb
            and cap.cpu_load <= self.max_cpu_load
        )


@dataclass
class Aggregate:
    """Per-subtree maxima — what a parent advertises upward."""

    max_cpu: float = 0.0
    max_memory_gb: float = 0.0
    max_bandwidth_mbps: float = 0.0
    max_storage_gb: float = 0.0
    min_cpu_load: float = 1.0

    def fold(self, cap: NodeCapacity) -> None:
        self.max_cpu = max(self.max_cpu, cap.cpu)
        self.max_memory_gb = max(self.max_memory_gb, cap.memory_gb)
        self.max_bandwidth_mbps = max(self.max_bandwidth_mbps, cap.bandwidth_mbps)
        self.max_storage_gb = max(self.max_storage_gb, cap.storage_gb)
        self.min_cpu_load = min(self.min_cpu_load, cap.cpu_load)

    def fold_aggregate(self, other: "Aggregate") -> None:
        self.max_cpu = max(self.max_cpu, other.max_cpu)
        self.max_memory_gb = max(self.max_memory_gb, other.max_memory_gb)
        self.max_bandwidth_mbps = max(self.max_bandwidth_mbps, other.max_bandwidth_mbps)
        self.max_storage_gb = max(self.max_storage_gb, other.max_storage_gb)
        self.min_cpu_load = min(self.min_cpu_load, other.min_cpu_load)

    def might_admit(self, c: Constraint) -> bool:
        """Can this subtree possibly contain a matching node?"""
        return (
            self.max_cpu >= c.min_cpu
            and self.max_memory_gb >= c.min_memory_gb
            and self.max_bandwidth_mbps >= c.min_bandwidth_mbps
            and self.max_storage_gb >= c.min_storage_gb
            and self.min_cpu_load <= c.max_cpu_load
        )


@dataclass
class DiscoveryResult:
    matches: Tuple[int, ...]
    hops: int
    subtrees_pruned: int


class ResourceDirectory(Service):
    """Hierarchy-walking resource discovery over a built TreeP network."""

    name = "discovery"

    def __init__(self, net: Optional[TreePNetwork] = None) -> None:
        super().__init__()
        self.net: Optional[TreePNetwork] = None
        self._agg: Dict[Tuple[int, int], Aggregate] = {}
        self._stale = True
        self._liveness_key: Tuple[int, int] = (-1, -1)
        if net is not None:
            if net.layout is None:
                raise RuntimeError("network must be built first")
            warn_direct_wire("ResourceDirectory(net)", "Cluster.with_discovery()")
            attach_service(net, self)

    # ------------------------------------------------------------ lifecycle
    def on_attach(self, ctx: ServiceContext) -> None:
        if ctx.net.layout is None:
            raise RuntimeError("network must be built first")
        self.net = ctx.net
        self.refresh()

    def on_node_join(self, node: "TreePNode") -> None:
        self._stale = True

    def on_node_leave(self, ident: int) -> None:
        self._stale = True

    def on_node_revive(self, node: "TreePNode") -> None:
        self._stale = True

    def _sync(self) -> None:
        """Lazily resync aggregates when churn happened since the last
        (re)computation — detected via the explicit churn callbacks or the
        fabric's liveness epoch (covers direct ``set_down``/``set_up``)."""
        assert self.net is not None
        key = (len(self.net.nodes), self.net.network.liveness_epoch)
        if self._stale or key != self._liveness_key:
            self.refresh()

    # ------------------------------------------------------------ aggregates
    def refresh(self) -> None:
        """Recompute subtree aggregates bottom-up (post-churn)."""
        net = self.net
        assert net is not None, "directory not attached to a network"
        layout = net.layout
        assert layout is not None
        self._agg.clear()
        # Level-by-level fold: a (parent, level) aggregate covers the
        # parent itself plus every child's (child, level-1) aggregate.
        for lvl in range(1, layout.height + 1):
            for p in layout.levels[lvl]:
                agg = Aggregate()
                if net.network.is_up(p):
                    agg.fold(net.capacities[p])
                for c in layout.children.get((p, lvl), ()):
                    if lvl == 1:
                        if net.network.is_up(c):
                            agg.fold(net.capacities[c])
                    else:
                        sub = self._agg.get((c, lvl - 1))
                        if sub is not None:
                            agg.fold_aggregate(sub)
                self._agg[(p, lvl)] = agg
        self._stale = False
        self._liveness_key = (len(net.nodes), net.network.liveness_epoch)

    def aggregate_of(self, parent: int, level: int) -> Optional[Aggregate]:
        self._sync()
        return self._agg.get((parent, level))

    # ---------------------------------------------------------------- query
    def query(
        self,
        constraint: Constraint,
        origin: Optional[int] = None,
        max_results: int = 4,
    ) -> DiscoveryResult:
        """Resolve *constraint*, counting tree-edge traversals as hops."""
        net = self.net
        assert net is not None, "directory not attached to a network"
        self._sync()
        layout = net.layout
        assert layout is not None
        if max_results < 1:
            raise ValueError("max_results must be >= 1")

        hops = 0
        pruned = 0
        matches: List[int] = []

        # Ascend from the origin until an ancestor's aggregate admits the
        # constraint (or the root is reached).
        if origin is None:
            origin = next(i for i in net.ids if net.network.is_up(i))
        start: Optional[int] = None
        cur = origin
        chain = [origin] + layout.ancestors(origin)
        for anc in chain[1:]:
            hops += 1
            lvl = layout.max_level.get(anc, 0)
            agg = self._agg.get((anc, lvl))
            if agg is not None and agg.might_admit(constraint):
                start = anc
                break
        if start is None:
            if chain[1:]:
                start = chain[-1]
            else:
                start = origin

        # Depth-first descent, pruning subtrees whose aggregate cannot match.
        stack: List[Tuple[int, int]] = [(start, layout.max_level.get(start, 0))]
        seen = set()
        while stack and len(matches) < max_results:
            node_id, lvl = stack.pop()
            if (node_id, lvl) in seen:
                continue
            seen.add((node_id, lvl))
            if net.network.is_up(node_id) and constraint.admits(net.capacities[node_id]):
                if node_id not in matches:
                    matches.append(node_id)
                    if len(matches) >= max_results:
                        break
            if lvl == 0:
                continue
            for c in layout.children.get((node_id, lvl), ()):
                if lvl == 1:
                    hops += 1
                    if net.network.is_up(c) and constraint.admits(net.capacities[c]):
                        if c not in matches:
                            matches.append(c)
                            if len(matches) >= max_results:
                                break
                else:
                    sub = self._agg.get((c, lvl - 1))
                    if sub is None or not sub.might_admit(constraint):
                        pruned += 1
                        continue
                    hops += 1
                    stack.append((c, lvl - 1))

        return DiscoveryResult(matches=tuple(matches), hops=hops,
                               subtrees_pruned=pruned)
