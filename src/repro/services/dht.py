"""DHT functionality on TreeP (§I: "easily modified to provide DHT").

Keys are hashed into the overlay's 1-D ID space; the **responsible node**
for a key is the live peer whose ID is Euclidean-closest among those the
routing walk encounters — the natural TreeP analogue of consistent
hashing's successor rule.  PUT routes the value to the responsible node and
replicates it to the node's level-0 neighbours (cheap fault tolerance on
the same links the overlay already maintains); GET routes the same way and
returns on the first replica hit.

The datagram handlers live on :class:`~repro.core.node.TreePNode`
(:meth:`_on_DhtPut` / :meth:`_on_DhtGet` are installed by this module —
*the* modification the paper alludes to); this class is the client API.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.messages import DhtGet, DhtPut, DhtValue
from repro.core.node import TreePNode
from repro.core.treep import TreePNetwork


def hash_key(key: str, extent: int) -> int:
    """Map an application key onto the overlay ID space (SHA-256)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % extent


@dataclass
class DhtResult:
    """Outcome of one PUT or GET."""

    key: str
    key_id: int
    found: bool
    value: Any = None
    hops: int = 0
    stored_on: Tuple[int, ...] = ()


def _closer_candidate(node: TreePNode, key_id: int, exclude: frozenset) -> Optional[int]:
    """Strictly-closer next hop towards *key_id*, from the whole table."""
    space = node.config.space
    here = space.distance(node.ident, key_id)
    best: Optional[int] = None
    best_d = here
    for e in node.table.candidates():
        if e.ident in exclude:
            continue
        d = space.distance(e.ident, key_id)
        if d < best_d:
            best, best_d = e.ident, d
    return best


def _install_handlers() -> None:
    """Attach the DHT datagram handlers to TreePNode (idempotent)."""
    if getattr(TreePNode, "_dht_installed", False):
        return

    def _on_DhtPut(self: TreePNode, src: int, msg: DhtPut) -> None:
        if msg.ttl > self.config.ttl_max:
            return
        exclude = frozenset((self.ident,))
        nxt = _closer_candidate(self, msg.key_id, exclude)
        if nxt is not None:
            self.send(nxt, DhtPut(msg.request_id, msg.origin, msg.key_id,
                                  msg.value, msg.ttl + 1, msg.replicas))
            return
        # We are the responsible node: store and replicate sideways.
        store = getattr(self, "kv_store", None)
        if store is None:
            store = self.kv_store = {}
        store[msg.key_id] = msg.value
        stored = [self.ident]
        for n in sorted(self.table.level0)[: max(0, msg.replicas - 1)]:
            self.send(n, DhtPut(msg.request_id, msg.origin, msg.key_id,
                                msg.value, self.config.ttl_max + 1, 0))
            stored.append(n)
        self.send(msg.origin, DhtValue(msg.request_id, msg.key_id, True,
                                       tuple(stored), msg.ttl))

    def _on_DhtGet(self: TreePNode, src: int, msg: DhtGet) -> None:
        if msg.ttl > self.config.ttl_max:
            return
        store = getattr(self, "kv_store", None)
        if store is not None and msg.key_id in store:
            self.send(msg.origin, DhtValue(msg.request_id, msg.key_id, True,
                                           store[msg.key_id], msg.ttl))
            return
        nxt = _closer_candidate(self, msg.key_id, frozenset((self.ident,)))
        if nxt is not None:
            self.send(nxt, DhtGet(msg.request_id, msg.origin, msg.key_id, msg.ttl + 1))
            return
        self.send(msg.origin, DhtValue(msg.request_id, msg.key_id, False, None, msg.ttl))

    def _on_DhtValue(self: TreePNode, src: int, msg: DhtValue) -> None:
        sink = getattr(self, "_dht_replies", None)
        if sink is None:
            sink = self._dht_replies = {}
        sink[msg.request_id] = msg

    TreePNode._on_DhtPut = _on_DhtPut  # type: ignore[attr-defined]
    TreePNode._on_DhtGet = _on_DhtGet  # type: ignore[attr-defined]
    TreePNode._on_DhtValue = _on_DhtValue  # type: ignore[attr-defined]
    TreePNode._dht_installed = True  # type: ignore[attr-defined]

    # Replica reception: a replicated PUT arrives with an exhausted TTL so
    # the receiving neighbour stores it without re-routing.  The handler
    # above covers this because _closer_candidate is skipped only when the
    # node is locally closest — replicas instead use ttl > ttl_max, which
    # the handler must treat as "store here".  Handled below by wrapping.
    orig_put = TreePNode._on_DhtPut  # type: ignore[attr-defined]

    def _on_DhtPut_with_replicas(self: TreePNode, src: int, msg: DhtPut) -> None:
        if msg.ttl > self.config.ttl_max:
            store = getattr(self, "kv_store", None)
            if store is None:
                store = self.kv_store = {}
            store[msg.key_id] = msg.value
            return
        orig_put(self, src, msg)

    TreePNode._on_DhtPut = _on_DhtPut_with_replicas  # type: ignore[attr-defined]


class TreePDht:
    """Client API: synchronous PUT/GET against a built TreeP network.

    >>> net = TreePNetwork(seed=7); _ = net.build(64)
    >>> dht = TreePDht(net)
    >>> dht.put("job/42", {"state": "done"}).found
    True
    >>> dht.get("job/42").value
    {'state': 'done'}
    """

    def __init__(self, net: TreePNetwork, replicas: int = 2) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        _install_handlers()
        self.net = net
        self.replicas = replicas
        self._rid = itertools.count(1)

    def _origin(self, via: Optional[int]) -> TreePNode:
        if via is not None:
            return self.net.nodes[via]
        for i in self.net.ids:
            if self.net.network.is_up(i):
                return self.net.nodes[i]
        raise RuntimeError("no live node to issue the request from")

    def put(self, key: str, value: Any, via: Optional[int] = None) -> DhtResult:
        """Store *value* under *key*; blocks (drains the sim) until done."""
        node = self._origin(via)
        key_id = hash_key(key, self.net.config.space.extent)
        rid = (node.ident << 20) | next(self._rid)
        node._on_DhtPut(node.ident, DhtPut(rid, node.ident, key_id, value,
                                           0, self.replicas))
        self.net.sim.drain()
        reply = getattr(node, "_dht_replies", {}).pop(rid, None)
        if reply is None:
            return DhtResult(key=key, key_id=key_id, found=False)
        return DhtResult(key=key, key_id=key_id, found=reply.found,
                         hops=reply.hops,
                         stored_on=tuple(reply.value) if reply.found else ())

    def get(self, key: str, via: Optional[int] = None) -> DhtResult:
        """Fetch the value under *key*; blocks until resolved or failed."""
        node = self._origin(via)
        key_id = hash_key(key, self.net.config.space.extent)
        rid = (node.ident << 20) | next(self._rid)
        node._on_DhtGet(node.ident, DhtGet(rid, node.ident, key_id, 0))
        self.net.sim.drain()
        reply = getattr(node, "_dht_replies", {}).pop(rid, None)
        if reply is None or not reply.found:
            return DhtResult(key=key, key_id=key_id, found=False,
                             hops=reply.hops if reply else 0)
        return DhtResult(key=key, key_id=key_id, found=True,
                         value=reply.value, hops=reply.hops)

    def stored_keys(self) -> Dict[int, List[int]]:
        """``{node id: key ids held}`` — distribution diagnostics."""
        out: Dict[int, List[int]] = {}
        for ident, node in self.net.nodes.items():
            store = getattr(node, "kv_store", None)
            if store:
                out[ident] = sorted(store)
        return out
