"""DHT functionality on TreeP (§I: "easily modified to provide DHT").

Keys are hashed into the overlay's 1-D ID space; the **responsible node**
for a key is the live peer whose ID is Euclidean-closest among those the
routing walk encounters — the natural TreeP analogue of consistent
hashing's successor rule.  PUT routes the value to the responsible node and
replicates it to the node's level-0 neighbours (cheap fault tolerance on
the same links the overlay already maintains); GET routes the same way and
returns on the first replica hit.

This is the *simple* key/value service — single coordinator, no quorum, no
re-replication; :mod:`repro.storage` is the durable subsystem built on the
same primitives.  The facade implements the
:class:`~repro.cluster.service.Service` lifecycle protocol: its datagram
handlers are declared via :meth:`TreePDht.node_handlers` and installed (and
torn down again) by the per-node service registry, covering nodes that join
later without monkey-patching.  PUT acks travel as the dedicated
:class:`~repro.core.messages.DhtPutAck` (carrying the replica set in its
own field), replica copies as ``DhtPut(direct=True)`` — no TTL abuse, and
a store confirmation can never be mistaken for a GET hit.

Construct through :meth:`repro.cluster.Cluster.with_dht`; the direct
``TreePDht(net)`` constructor remains as a deprecation shim.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.cluster.registry import attach_service
from repro.cluster.service import Handler, Service, ServiceContext, warn_direct_wire
from repro.core.lookup import greedy_key_next_hop
from repro.core.messages import DhtGet, DhtPut, DhtPutAck, DhtValue
from repro.core.node import TreePNode
from repro.core.treep import TreePNetwork
from repro.storage.replication import Level0Placement
from repro.storage.store import KVStore, hash_key

__all__ = ["DhtResult", "TreePDht", "hash_key"]


@dataclass
class DhtResult:
    """Outcome of one PUT or GET."""

    key: str
    key_id: int
    found: bool
    value: Any = None
    hops: int = 0
    stored_on: Tuple[int, ...] = ()


class TreePDht(Service):
    """Client API: synchronous PUT/GET against a built TreeP network.

    >>> from repro.cluster import Cluster
    >>> dht = Cluster(seed=7).build(64).with_dht().dht
    >>> dht.put("job/42", {"state": "done"}).found
    True
    >>> dht.get("job/42").value
    {'state': 'done'}
    """

    name = "dht"

    def __init__(self, net: Optional[TreePNetwork] = None, replicas: int = 2) -> None:
        super().__init__()
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.net: Optional[TreePNetwork] = None
        self.replicas = replicas
        #: Per-node key/value partitions (was an ad-hoc dict on the node).
        self.stores: Dict[int, KVStore] = {}
        self._placement = Level0Placement()
        self._replies: Dict[int, object] = {}
        self._abandoned: Dict[int, None] = {}
        self._rid = itertools.count(1)
        if net is not None:
            warn_direct_wire("TreePDht(net, ...)", "Cluster.with_dht(...)")
            attach_service(net, self)

    # ------------------------------------------------------------ lifecycle
    def on_attach(self, ctx: ServiceContext) -> None:
        self.net = ctx.net

    def setup_node(self, node: TreePNode) -> None:
        """Give *node* a (fresh) key/value partition."""
        self.stores[node.ident] = KVStore(node.ident)

    def node_handlers(self, node: TreePNode) -> Mapping[type, Handler]:
        return {
            DhtPut: lambda src, msg, node=node: self._on_put(node, src, msg),
            DhtGet: lambda src, msg, node=node: self._on_get(node, src, msg),
            DhtValue: self._on_reply,
            DhtPutAck: self._on_reply,
        }

    def close(self) -> None:
        """Tear the service down (registry-owned handler cleanup)."""
        self.detach()

    def _on_put(self, node: TreePNode, src: int, msg: DhtPut) -> None:
        store = self.stores[node.ident]
        if msg.direct:
            # Replica copy from the responsible node: store, don't re-route.
            store.apply(msg.key_id, msg.value, store.next_version(msg.key_id),
                        writer=src, timestamp=node.sim.now)
            return
        if msg.ttl > node.config.ttl_max:
            return
        nxt = greedy_key_next_hop(node, msg.key_id)
        if nxt is not None:
            node.send(nxt, DhtPut(msg.request_id, msg.origin, msg.key_id,
                                  msg.value, msg.ttl + 1, msg.replicas))
            return
        # We are the responsible node: store and replicate sideways, using
        # the same level-0 placement the storage subsystem implements.
        store.apply(msg.key_id, msg.value, store.next_version(msg.key_id),
                    writer=node.ident, timestamp=node.sim.now)
        stored = self._placement.replicas(node, msg.key_id, msg.replicas)
        replica = DhtPut(msg.request_id, msg.origin, msg.key_id, msg.value,
                         0, 0, direct=True)
        for n in stored[1:]:
            node.send(n, replica)
        node.send(msg.origin, DhtPutAck(msg.request_id, msg.key_id, True,
                                        tuple(stored), msg.ttl))

    def _on_get(self, node: TreePNode, src: int, msg: DhtGet) -> None:
        if msg.ttl > node.config.ttl_max:
            return
        vv = self.stores[node.ident].get(msg.key_id)
        if vv is not None:
            node.send(msg.origin, DhtValue(msg.request_id, msg.key_id, True,
                                           vv.value, msg.ttl))
            return
        nxt = greedy_key_next_hop(node, msg.key_id)
        if nxt is not None:
            node.send(nxt, DhtGet(msg.request_id, msg.origin, msg.key_id, msg.ttl + 1))
            return
        node.send(msg.origin, DhtValue(msg.request_id, msg.key_id, False, None, msg.ttl))

    def _on_reply(self, src: int, msg) -> None:
        if self._abandoned.pop(msg.request_id, 0) is None:
            return  # the client gave up on this request long ago
        self._replies[msg.request_id] = msg

    # ---------------------------------------------------------- client side
    def _await_reply(self, rid: int):
        return self.net.pump_until_reply(
            self._replies, self._abandoned, rid,
            timeout=2 * self.net.config.lookup_timeout)

    def put(self, key: str, value: Any, via: Optional[int] = None) -> DhtResult:
        """Store *value* under *key*; blocks (runs the sim) until done."""
        node = self.net.live_origin(via)
        key_id = hash_key(key, self.net.config.space.extent)
        rid = next(self._rid)
        self._on_put(node, node.ident,
                     DhtPut(rid, node.ident, key_id, value, 0, self.replicas))
        reply = self._await_reply(rid)
        if reply is None:
            return DhtResult(key=key, key_id=key_id, found=False)
        return DhtResult(key=key, key_id=key_id, found=reply.ok,
                         hops=reply.hops, stored_on=reply.stored_on)

    def get(self, key: str, via: Optional[int] = None) -> DhtResult:
        """Fetch the value under *key*; blocks until resolved or failed."""
        node = self.net.live_origin(via)
        key_id = hash_key(key, self.net.config.space.extent)
        rid = next(self._rid)
        self._on_get(node, node.ident, DhtGet(rid, node.ident, key_id, 0))
        reply = self._await_reply(rid)
        if reply is None or not reply.found:
            return DhtResult(key=key, key_id=key_id, found=False,
                             hops=reply.hops if reply else 0)
        return DhtResult(key=key, key_id=key_id, found=True,
                         value=reply.value, hops=reply.hops)

    def stored_keys(self) -> Dict[int, List[int]]:
        """``{node id: key ids held}`` — distribution diagnostics."""
        out: Dict[int, List[int]] = {}
        for ident, store in self.stores.items():
            if len(store):
                out[ident] = sorted(store.keys())
        return out
