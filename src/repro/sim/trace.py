"""Structured event tracing.

A :class:`Tracer` collects :class:`TraceEvent` records (time, category,
node, detail).  Tracing is off by default everywhere; experiments enable it
only when debugging, so the RNG isolation guarantee (see
:mod:`repro.sim.rng`) keeps traced and untraced runs identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    node: int
    detail: str = ""
    data: Optional[Dict[str, Any]] = None

    def __str__(self) -> str:
        extra = f" {self.data}" if self.data else ""
        return f"[{self.time:10.4f}] {self.category:<12} node={self.node} {self.detail}{extra}"


class Tracer:
    """Bounded in-memory trace sink with category filtering.

    Parameters
    ----------
    categories:
        When given, only these categories are recorded; ``counts`` likewise
        tallies only recorded categories, so it always matches what is (or
        was, before the ring buffer wrapped) in ``events``.
    capacity:
        Ring-buffer bound; oldest events are discarded beyond it.
    """

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        capacity: int = 100_000,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.categories = set(categories) if categories is not None else None
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.counts: Dict[str, int] = {}

    def enabled_for(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def record(
        self,
        time: float,
        category: str,
        node: int,
        detail: str = "",
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not self.enabled_for(category):
            return
        self.counts[category] = self.counts.get(category, 0) + 1
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(TraceEvent(time, category, node, detail, data))

    def filter(self, category: Optional[str] = None, node: Optional[int] = None) -> List[TraceEvent]:
        """Events matching the given category and/or node."""
        out = self.events
        if category is not None:
            out = [e for e in out if e.category == category]
        if node is not None:
            out = [e for e in out if e.node == node]
        return list(out)

    def clear(self) -> None:
        self.events.clear()
        self.counts.clear()
        self.dropped = 0

    def dump(self, limit: int = 50) -> str:
        """Human-readable tail of the trace."""
        tail = list(self.events)[-limit:]
        return "\n".join(str(e) for e in tail)


#: A tracer that records nothing; safe default for hot paths.
class NullTracer(Tracer):
    def __init__(self) -> None:
        super().__init__(categories=(), capacity=1)

    def record(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        return


NULL_TRACER = NullTracer()
