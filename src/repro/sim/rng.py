"""Named, seeded random substreams.

Every stochastic component (latency model, capacity sampler, failure
schedule, workload generator, election countdown noise…) draws from its own
named substream derived from a single experiment seed.  This gives two
properties the experiments rely on:

* **Reproducibility** — a run is a pure function of its seed.
* **Isolation** — adding draws to one component never perturbs another
  (e.g. enabling tracing does not change which nodes fail).

Substreams are ``numpy.random.Generator`` instances keyed by name via
``SeedSequence.spawn``-style derivation (we hash the name into the entropy).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _name_entropy(name: str) -> int:
    """Stable 128-bit entropy derived from a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "little")


class RngRegistry:
    """Factory of named ``numpy`` generators sharing one root seed.

    >>> r1, r2 = RngRegistry(7), RngRegistry(7)
    >>> float(r1.get("latency").random()) == float(r2.get("latency").random())
    True
    >>> float(r1.get("a").random()) == float(r1.get("b").random())
    False
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        Repeated calls return the *same* generator object, so draws within a
        stream are sequential.
        """
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self.seed, _name_entropy(name)])
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per node) with isolated streams."""
        child_seed = int(
            np.random.SeedSequence([self.seed, _name_entropy(name)]).generate_state(1)[0]
        )
        return RngRegistry(child_seed)

    def streams(self) -> list[str]:
        """Names of streams created so far (diagnostics)."""
        return sorted(self._streams)
