"""Adversarial network conditions: geography, loss bursts, partitions,
stragglers.

The seed network models an *ideal* fabric: one latency distribution for
every pair and independent per-datagram loss.  Real overlays — the
Grid-5000 deployments the paper evaluates on — fail in correlated ways:
latency depends on where two nodes sit, losses arrive in bursts on
specific links, whole address sets get cut off and later reconnected,
and individual machines run slow without being down.  This module
supplies each of those as a pluggable model composing with the existing
seams (:class:`~repro.sim.latency.LatencyModel`,
``Network.partition_filter``, ``Network.loss_model``) so the default
fabric — and therefore every pre-existing scenario — is bit-identical
until a condition is explicitly installed.

Split of responsibilities (the SPE topology/propagation split):

* *Propagation* models live here and answer per-datagram questions —
  :class:`GeoLatency` (coordinate-derived delay), :class:`GilbertElliott`
  (two-state burst loss), :class:`StragglerLatency` (victim slowdown).
* *Topology* decisions — which subtree is a rack, who becomes a victim —
  live in :mod:`repro.workloads.adversarial`, which never imports sim.
* :class:`NetworkConditions` is the composition root: it owns the
  network's ``partition_filter``/``loss_model``/``latency`` slots for the
  duration of an experiment and restores them on :meth:`detach`.

Partitions are first-class values with exactly-once :attr:`cut_hooks` /
:attr:`heal_hooks` mirroring ``Network.down_hooks/up_hooks``: cutting an
already-active partition (or healing an inactive one) is a no-op, so a
scheduled heal racing a manual one fires observers exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.latency import LatencyModel
from repro.sim.network import Network

__all__ = [
    "GeoLatency",
    "StragglerLatency",
    "GilbertElliott",
    "Partition",
    "NetworkConditions",
]

#: Mean distance between two uniform points in the unit square — the
#: fallback pairwise-distance estimate before any address is known.
_UNIT_SQUARE_MEAN_DIST = 0.5214


class GeoLatency(LatencyModel):
    """Coordinate-derived latency: ``base + per_unit * distance``.

    Every address gets a deterministic position in the unit square,
    derived by hashing ``(entropy, address)`` — *not* by drawing from a
    shared stream — so positions are independent of the order in which
    pairs are first sampled.  Addresses cluster around ``sites`` centers
    (machine-room racks / Grid-5000 sites): an address's site is part of
    the same hash, and ``spread`` controls how tightly members hug their
    center.  Intra-site pairs therefore see near-``base`` delay while
    cross-site pairs pay the center-to-center distance.

    Parameters
    ----------
    rng:
        Stream for entropy (one draw at construction) and per-datagram
        jitter.  Pass a dedicated registry stream (PR-5 discipline).
    base / per_unit:
        Affine map from euclidean distance to seconds.
    sites / spread:
        Number of cluster centers and the normal scatter around them.
    jitter:
        Per-datagram multiplicative noise: delay is scaled by
        ``1 + jitter * U[0, 1)``.  ``0.0`` samples nothing.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        base: float = 0.002,
        per_unit: float = 0.08,
        sites: int = 4,
        spread: float = 0.04,
        jitter: float = 0.1,
    ) -> None:
        if base < 0 or per_unit < 0:
            raise ValueError(f"base/per_unit must be >= 0, got {base}/{per_unit}")
        if sites < 1:
            raise ValueError(f"sites must be >= 1, got {sites}")
        if not 0.0 <= jitter:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.base = float(base)
        self.per_unit = float(per_unit)
        self.sites = int(sites)
        self.spread = float(spread)
        self.jitter = float(jitter)
        # One draw fixes the whole geography; coordinates then come from
        # per-address hashes so sampling order cannot perturb them.
        self._entropy = int(self.rng.integers(0, 2**63))
        centers_rng = np.random.default_rng((self._entropy, 0))
        self._centers = centers_rng.random((self.sites, 2))
        self._coords: Dict[int, np.ndarray] = {}
        self._dist: Dict[Tuple[int, int], float] = {}

    # ---------------------------------------------------------- geography
    def coordinate(self, address: int) -> np.ndarray:
        """The (cached) unit-square position of *address*."""
        coord = self._coords.get(address)
        if coord is None:
            g = np.random.default_rng((self._entropy, 1, int(address)))
            center = self._centers[int(g.integers(0, self.sites))]
            coord = np.clip(center + g.normal(0.0, self.spread, 2), 0.0, 1.0)
            self._coords[address] = coord
        return coord

    def site_of(self, address: int) -> int:
        """The site (cluster-center index) *address* hashes to."""
        g = np.random.default_rng((self._entropy, 1, int(address)))
        return int(g.integers(0, self.sites))

    def distance(self, src: int, dst: int) -> float:
        key = (src, dst) if src <= dst else (dst, src)
        d = self._dist.get(key)
        if d is None:
            delta = self.coordinate(src) - self.coordinate(dst)
            d = self._dist[key] = float(np.hypot(delta[0], delta[1]))
        return d

    # ------------------------------------------------------------ sampling
    def sample(self, src: int, dst: int) -> float:
        delay = self.base + self.per_unit * self.distance(src, dst)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(self.rng.random())
        return delay

    def expected(self) -> float:
        if len(self._coords) >= 2:
            addrs = sorted(self._coords)[:64]
            dists = [self.distance(a, b)
                     for i, a in enumerate(addrs) for b in addrs[i + 1:]]
            mean_dist = float(np.mean(dists))
        else:
            mean_dist = _UNIT_SQUARE_MEAN_DIST
        return (self.base + self.per_unit * mean_dist) * (1.0 + self.jitter / 2.0)


class StragglerLatency(LatencyModel):
    """Multiplies delay on any link touching a victim address.

    Wraps an arbitrary base model and scales its sample by ``factor``
    when either endpoint is a victim.  The base model is always sampled
    exactly once per call, so its RNG stream advances identically whether
    or not the link is slow — a run with ``factor=1.0`` (or an empty
    victim set) is bit-identical to the unwrapped network, which is what
    lets a straggler experiment keep its control run honest.
    """

    def __init__(self, base: LatencyModel, victims: Iterable[int],
                 factor: float) -> None:
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.base = base
        self.victims: FrozenSet[int] = frozenset(int(v) for v in victims)
        self.factor = float(factor)
        #: Datagrams that paid the slowdown (per-condition accounting).
        self.slowed = 0

    def sample(self, src: int, dst: int) -> float:
        delay = self.base.sample(src, dst)
        if src in self.victims or dst in self.victims:
            self.slowed += 1
            return delay * self.factor
        return delay

    def expected(self) -> float:
        # Timeout sizing keeps the healthy expectation: stragglers are a
        # condition the protocol must absorb, not one it may budget for.
        return self.base.expected()


class GilbertElliott:
    """Two-state (good/bad) Markov burst-loss model, one chain per link.

    In the *good* state datagrams drop with ``loss_good`` (usually 0);
    in the *bad* state with ``loss_bad``.  Each observed datagram first
    advances the link's chain (``p_enter_bad`` / ``p_exit_bad``), then
    draws the loss decision — always exactly two draws from the dedicated
    stream, so the draw count (and thus everything downstream of the
    stream) is independent of the chain's path.

    Plugs into ``Network.loss_model`` (called as a predicate; ``True``
    drops, counted into ``dropped_loss``).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
        p_enter_bad: float = 0.02,
        p_exit_bad: float = 0.2,
    ) -> None:
        for name, p in (("loss_good", loss_good), ("loss_bad", loss_bad),
                        ("p_enter_bad", p_enter_bad), ("p_exit_bad", p_exit_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.rng = rng
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self.p_enter_bad = float(p_enter_bad)
        self.p_exit_bad = float(p_exit_bad)
        self._bad: Dict[Tuple[int, int], bool] = {}
        self.packets = 0
        self.drops = 0
        self.bad_packets = 0
        self.transitions = 0

    def __call__(self, src: int, dst: int) -> bool:
        self.packets += 1
        key = (src, dst)
        bad = self._bad.get(key, False)
        flip = float(self.rng.random())
        if bad:
            if flip < self.p_exit_bad:
                bad = False
                self.transitions += 1
        elif flip < self.p_enter_bad:
            bad = True
            self.transitions += 1
        self._bad[key] = bad
        p_loss = self.loss_bad if bad else self.loss_good
        if bad:
            self.bad_packets += 1
        drop = float(self.rng.random()) < p_loss
        if drop:
            self.drops += 1
        return drop

    # ----------------------------------------------------------- analytics
    def stationary_bad(self) -> float:
        """Long-run fraction of time a link spends in the bad state."""
        denom = self.p_enter_bad + self.p_exit_bad
        return self.p_enter_bad / denom if denom > 0 else 0.0

    def expected_loss(self) -> float:
        """Stationary mean loss rate implied by the chain parameters."""
        pi_bad = self.stationary_bad()
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def observed_loss(self) -> float:
        return self.drops / self.packets if self.packets else 0.0


@dataclass(frozen=True)
class Partition:
    """A cut between two address sets.

    ``bidirectional=True`` blocks both directions; ``False`` models an
    asymmetric failure — datagrams from ``a`` to ``b`` are dropped while
    ``b`` can still reach ``a`` (the direction a one-way routing
    blackhole takes).  Partitions are values: equality is by content, and
    :class:`NetworkConditions` treats equal partitions as the same cut.
    """

    a: FrozenSet[int]
    b: FrozenSet[int]
    bidirectional: bool = True
    name: str = ""

    def blocks(self, src: int, dst: int) -> bool:
        if src in self.a and dst in self.b:
            return True
        return self.bidirectional and src in self.b and dst in self.a


class NetworkConditions:
    """Composition root for adversarial conditions on one network.

    Construction takes ownership of the network's ``partition_filter``
    (composing with any pre-existing filter, which keeps blocking
    underneath), and offers the ``loss_model`` / ``latency`` seams via
    :meth:`set_loss_model` / :meth:`set_stragglers`.  :meth:`detach`
    restores every seam it touched.

    Cut/heal observers register on :attr:`cut_hooks` / :attr:`heal_hooks`
    (``Callable[[Partition], None]``); both fire exactly once per
    transition no matter how many times :meth:`cut`/:meth:`heal` are
    called or how schedules overlap — the mirror of
    ``Network.down_hooks/up_hooks`` for connectivity instead of liveness.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self._prev_filter = network.partition_filter
        self._prev_loss_model = network.loss_model
        # Bound-method access creates a fresh object each time; keep the
        # installed one so detach() can recognise (and only then undo) it.
        self._installed_filter = self._filter
        network.partition_filter = self._installed_filter
        self._active: Dict[Partition, None] = {}  # insertion-ordered set
        self.cut_hooks: List[Callable[[Partition], None]] = []
        self.heal_hooks: List[Callable[[Partition], None]] = []
        self.cuts = 0
        self.heals = 0
        #: Datagrams blocked per partition name (per-condition accounting).
        self.blocked: Dict[str, int] = {}
        self._base_latency: Optional[LatencyModel] = None
        self._detached = False

    # ----------------------------------------------------------- partitions
    def partition(self, a: Iterable[int], b: Optional[Iterable[int]] = None,
                  *, bidirectional: bool = True, name: str = "") -> Partition:
        """Build (but do not activate) a partition.

        ``b=None`` isolates *a* from everyone else: the complement is
        computed over the addresses registered *now*, so build the
        partition when the membership you mean to cut exists.
        """
        side_a = frozenset(int(x) for x in a)
        if b is None:
            everyone = frozenset(p.address for p in self.network.processes())
            side_b = everyone - side_a
        else:
            side_b = frozenset(int(x) for x in b)
        if side_a & side_b:
            raise ValueError(
                f"partition sides overlap: {sorted(side_a & side_b)}")
        if not name:
            name = f"cut-{self.cuts + len(self._active)}"
        return Partition(a=side_a, b=side_b, bidirectional=bidirectional,
                         name=name)

    def cut(self, partition: Partition) -> bool:
        """Activate *partition*.  Returns False (and fires nothing) if it
        is already active."""
        self._check_attached()
        if partition in self._active:
            return False
        self._active[partition] = None
        self.cuts += 1
        for hook in list(self.cut_hooks):
            hook(partition)
        return True

    def heal(self, partition: Partition) -> bool:
        """Deactivate *partition*.  Returns False (and fires nothing) if
        it is not active."""
        self._check_attached()
        if partition not in self._active:
            return False
        del self._active[partition]
        self.heals += 1
        for hook in list(self.heal_hooks):
            hook(partition)
        return True

    def heal_all(self) -> int:
        """Heal every active partition; returns how many healed."""
        healed = 0
        for partition in list(self._active):
            healed += bool(self.heal(partition))
        return healed

    def active(self) -> Tuple[Partition, ...]:
        return tuple(self._active)

    def schedule(self, start: float, duration: float, a: Iterable[int],
                 b: Optional[Iterable[int]] = None, *,
                 bidirectional: bool = True, name: str = ""
                 ) -> Tuple[Partition, Event, Event]:
        """Schedule a partition that heals: cut at absolute virtual time
        *start*, heal at ``start + duration``.

        Both events route through :meth:`cut`/:meth:`heal`, so a manual
        heal before the scheduled one leaves the scheduled event a no-op
        and hooks still fire exactly once per transition.  Returns the
        partition and both events (cancel them to abort the schedule).
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        partition = self.partition(a, b, bidirectional=bidirectional,
                                   name=name)
        tag = partition.name
        cut_ev = self.sim.schedule_at(
            start, lambda: self.cut(partition), label=f"conditions:cut:{tag}")
        heal_ev = self.sim.schedule_at(
            start + duration, lambda: self.heal(partition),
            label=f"conditions:heal:{tag}")
        return partition, cut_ev, heal_ev

    def _filter(self, src: int, dst: int) -> bool:
        for partition in self._active:
            if partition.blocks(src, dst):
                self.blocked[partition.name] = (
                    self.blocked.get(partition.name, 0) + 1)
                return True
        prev = self._prev_filter
        return prev is not None and prev(src, dst)

    def blocked_total(self) -> int:
        return sum(self.blocked.values())

    # ------------------------------------------------------------ loss seam
    def set_loss_model(self, model: Callable[[int, int], bool]) -> None:
        """Install a per-link loss predicate (e.g. :class:`GilbertElliott`)
        on the network's ``loss_model`` seam."""
        self._check_attached()
        self.network.loss_model = model

    def clear_loss_model(self) -> None:
        self.network.loss_model = self._prev_loss_model

    # ------------------------------------------------------- straggler seam
    def set_stragglers(self, victims: Iterable[int], factor: float
                       ) -> StragglerLatency:
        """Wrap the network's latency model so links touching *victims*
        run ``factor`` times slower.  Re-calling replaces the victim set
        (the original base model is kept, not re-wrapped)."""
        self._check_attached()
        base = self.network.latency
        if isinstance(base, StragglerLatency):
            base = base.base
        if self._base_latency is None:
            self._base_latency = base
        wrapped = StragglerLatency(base, victims, factor)
        self.network.latency = wrapped
        return wrapped

    def clear_stragglers(self) -> None:
        if self._base_latency is not None:
            self.network.latency = self._base_latency
            self._base_latency = None

    # ------------------------------------------------------------ lifecycle
    def detach(self) -> None:
        """Restore every seam this instance took over.  Active partitions
        stop blocking (the filter is uninstalled) but hook counters and
        accounting survive for post-run assertions."""
        if self._detached:
            return
        if self.network.partition_filter is self._installed_filter:
            self.network.partition_filter = self._prev_filter
        self.clear_loss_model()
        self.clear_stragglers()
        self._detached = True

    def _check_attached(self) -> None:
        if self._detached:
            raise RuntimeError("NetworkConditions is detached")
