"""Event records and the simulator's priority queue.

The queue is a binary heap (``heapq``) of :class:`Event` records.  Events
firing at the same timestamp are ordered by a monotonically increasing
sequence number, which makes every run fully deterministic: two events
scheduled at the same time always fire in scheduling order.

Cancellation is *lazy* (O(1)): a cancelled event is only marked, and the
pop path discards it when it surfaces.  To keep the heap bounded under
heavy timer churn (services arming and cancelling ``ctx.every`` tasks far
faster than their periods elapse — see ``cluster/registry.py``), the queue
**compacts** itself whenever tombstones outnumber live events: dead
entries are filtered out and the heap is rebuilt in O(live).  Because
every entry carries a unique ``(time, seq)`` key, compaction can never
change the order in which live events pop — rebuild-then-heapify yields
the same total order, so simulation results are bit-identical with or
without compaction.  The amortised cost per cancel is O(1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Type of an event callback.  Callbacks receive no arguments; bind state via
#: closures or ``functools.partial``.
Callback = Callable[[], None]

#: Compaction never bothers with heaps smaller than this (the rebuild
#: would cost more than the memory it reclaims).
_COMPACT_MIN = 64


@dataclass(eq=False, slots=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time at which the callback fires.
    seq:
        Tie-breaker; assigned by the queue, increases monotonically.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap (bounded by compaction) and are
        skipped when popped (lazy deletion — O(1) cancel).
    label:
        Optional human-readable tag used by traces and error messages.
    """

    time: float
    seq: int
    callback: Callback
    cancelled: bool = False
    label: str = ""
    _queue: Optional["EventQueue"] = field(default=None, repr=False)

    def __lt__(self, other: "Event") -> bool:
        # API-level ordering by (time, seq), kept for callers sorting
        # event collections.  NOT the heap hot path: EventQueue compares
        # (time, seq, Event) tuples, which never reach this method.
        t, o = self.time, other.time
        if t != o:
            return t < o
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the queue skips it.  Idempotent, amortised O(1)."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancel()


class EventQueue:
    """Binary-heap event queue with lazy, compacting cancellation.

    Heap entries are plain ``(time, seq, Event)`` tuples rather than the
    :class:`Event` records themselves: tuple comparison runs entirely in C
    (float, then int), so the few hundred thousand sift comparisons of a
    large run never call back into the interpreter.  The unique ``seq``
    guarantees the third element is never compared.

    >>> q = EventQueue()
    >>> e = q.push(1.0, lambda: None, label="hello")
    >>> q.peek_time()
    1.0
    >>> e.cancel()
    >>> q.pop() is None
    True
    """

    __slots__ = ("_heap", "_next_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical heap length, tombstones included (observability: the
        bounded-heap regression tests assert ``heap_size`` stays within a
        constant factor of ``len(queue)``)."""
        return len(self._heap)

    def push(self, time: float, callback: Callback, label: str = "") -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        if time != time:  # NaN guard: a NaN timestamp would corrupt the heap
            raise ValueError("event time must not be NaN")
        seq = self._next_seq
        self._next_seq = seq + 1
        ev = Event(time=time, seq=seq, callback=callback, label=label)
        ev._queue = self
        heapq.heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def pop(self) -> Optional[Event]:
        """Pop the earliest live event, or ``None`` if the heap is empty.

        Cancelled events are discarded transparently; a single ``pop`` may
        discard many cancelled entries but returns at most one live event.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[2]
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        for _, _, ev in self._heap:
            ev._queue = None  # detach so late cancels cannot corrupt _live
        self._heap.clear()
        self._live = 0

    # ------------------------------------------------------------ internals
    def _note_cancel(self) -> None:
        """Account one cancellation; compact when tombstones dominate.

        Keeps ``heap_size <= max(2 * live, _COMPACT_MIN)`` at all times, so
        a service that arms and cancels timers in a tight loop cannot grow
        the heap without bound while the cancelled firing times are still
        far in the virtual future.  Compaction rebuilds the heap from the
        live entries in O(live); the unique ``(time, seq)`` keys mean the
        rebuilt heap pops in exactly the same order, so results are
        bit-identical with or without it.
        """
        self._live -= 1
        heap = self._heap
        if len(heap) > _COMPACT_MIN and len(heap) - self._live > self._live:
            self._heap = [item for item in heap if not item[2].cancelled]
            heapq.heapify(self._heap)


def make_callback(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Callback:
    """Bind arguments into a zero-argument callback without ``lambda`` noise."""

    def _cb() -> None:
        fn(*args, **kwargs)

    return _cb
