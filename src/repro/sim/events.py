"""Event records and the simulator's priority queue.

The queue is a plain binary heap (``heapq``) of small tuples.  Events firing
at the same timestamp are ordered by a monotonically increasing sequence
number, which makes every run fully deterministic: two events scheduled at
the same time always fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Type of an event callback.  Callbacks receive no arguments; bind state via
#: closures or ``functools.partial``.
Callback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time at which the callback fires.
    seq:
        Tie-breaker; assigned by the queue, increases monotonically.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped
        (lazy deletion — O(1) cancel).
    label:
        Optional human-readable tag used by traces and error messages.
    """

    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    _queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1


class EventQueue:
    """Binary-heap event queue with lazy cancellation.

    >>> q = EventQueue()
    >>> e = q.push(1.0, lambda: None, label="hello")
    >>> q.peek_time()
    1.0
    >>> e.cancel()
    >>> q.pop() is None
    True
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callback, label: str = "") -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        if time != time:  # NaN guard: a NaN timestamp would corrupt the heap
            raise ValueError("event time must not be NaN")
        ev = Event(time=time, seq=next(self._counter), callback=callback, label=label)
        ev._queue = self
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def pop(self) -> Optional[Event]:
        """Pop the earliest live event, or ``None`` if the heap is empty.

        Cancelled events are discarded transparently; a single ``pop`` may
        discard many cancelled entries but returns at most one live event.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop every pending event."""
        for ev in self._heap:
            ev._queue = None  # detach so late cancels cannot corrupt _live
        self._heap.clear()
        self._live = 0


def make_callback(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Callback:
    """Bind arguments into a zero-argument callback without ``lambda`` noise."""

    def _cb() -> None:
        fn(*args, **kwargs)

    return _cb
