"""Discrete-event simulation substrate for the TreeP reproduction.

This package provides everything the overlay protocols need to run as a
*packet-switched* simulation with purely local routing decisions (the setting
the paper's evaluation uses):

* :mod:`repro.sim.engine` — a heap-based discrete-event kernel
  (:class:`~repro.sim.engine.Simulator`).
* :mod:`repro.sim.events` — event records and the priority queue.
* :mod:`repro.sim.network` — a UDP-like lossy datagram network connecting
  simulated processes by address.
* :mod:`repro.sim.latency` — pluggable per-link latency models.
* :mod:`repro.sim.rng` — named, seeded random substreams so every experiment
  is reproducible bit-for-bit.
* :mod:`repro.sim.failures` — the paper's 5%-step random-disconnect schedule
  plus generic Poisson churn processes.
* :mod:`repro.sim.conditions` — adversarial conditions: geographic latency,
  Gilbert-Elliott burst loss, healing partitions, straggler slowdowns.
* :mod:`repro.sim.trace` — structured, filterable event tracing.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.sim.network import Datagram, Network, Process
from repro.sim.rng import RngRegistry
from repro.sim.failures import FailureSchedule, PoissonChurn
from repro.sim.conditions import (
    GeoLatency,
    GilbertElliott,
    NetworkConditions,
    Partition,
    StragglerLatency,
)
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "ConstantLatency",
    "Datagram",
    "Event",
    "EventQueue",
    "FailureSchedule",
    "GeoLatency",
    "GilbertElliott",
    "LatencyModel",
    "LogNormalLatency",
    "Network",
    "NetworkConditions",
    "Partition",
    "PoissonChurn",
    "Process",
    "RngRegistry",
    "Simulator",
    "StragglerLatency",
    "TraceEvent",
    "Tracer",
    "UniformLatency",
]
