"""Failure and churn injection.

Two generators:

* :class:`FailureSchedule` — the paper's evaluation protocol: repeatedly
  disconnect a fixed fraction (default 5%) of the *initial* population at
  random, with no repair, until only a small remnant survives.
* :class:`PoissonChurn` — continuous join/leave churn for the future-work
  style experiments (Grid-5000 churn stress in §VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.network import Network


@dataclass(frozen=True)
class FailureStep:
    """One step of the paper's sweep."""

    step_index: int
    newly_failed: tuple[int, ...]
    cumulative_failed_fraction: float
    surviving: tuple[int, ...]


class FailureSchedule:
    """The paper's 5%-step random disconnect schedule.

    Parameters
    ----------
    population:
        Addresses present at steady state; fractions are of this set.
    step_fraction:
        Fraction of the initial population disconnected per step (paper: 5%).
    stop_fraction:
        Sweep ends when the surviving fraction would drop below this
        (paper: 5% of the initial topology remains).
    rng:
        Source of the kill order; the whole permutation is drawn up front so
        the set of nodes failed by step *k* is independent of how results
        are consumed.
    """

    def __init__(
        self,
        population: Sequence[int],
        rng: np.random.Generator,
        step_fraction: float = 0.05,
        stop_fraction: float = 0.05,
    ) -> None:
        if not population:
            raise ValueError("population must be non-empty")
        if not 0 < step_fraction < 1:
            raise ValueError(f"step_fraction must be in (0,1), got {step_fraction}")
        if not 0 <= stop_fraction < 1:
            raise ValueError(f"stop_fraction must be in [0,1), got {stop_fraction}")
        self.population: List[int] = list(population)
        self.step_fraction = step_fraction
        self.stop_fraction = stop_fraction
        self._order = list(rng.permutation(self.population))

    def steps(self) -> Iterator[FailureStep]:
        """Yield successive failure steps.

        Step *k* (1-based) has killed ``k * step_fraction`` of the initial
        population in total.  The final step leaves at least
        ``stop_fraction`` of the population alive.
        """
        n = len(self.population)
        per_step = max(1, int(round(self.step_fraction * n)))
        max_killed = int(np.floor((1.0 - self.stop_fraction) * n))
        killed = 0
        step_index = 0
        while killed < max_killed:
            take = min(per_step, max_killed - killed)
            newly = tuple(self._order[killed : killed + take])
            killed += take
            step_index += 1
            surviving = tuple(self._order[killed:])
            yield FailureStep(
                step_index=step_index,
                newly_failed=newly,
                cumulative_failed_fraction=killed / n,
                surviving=surviving,
            )

    def apply_step(self, network: Network, step: FailureStep) -> None:
        """Crash-stop the step's victims on *network*."""
        for addr in step.newly_failed:
            network.set_down(addr)


class PoissonChurn:
    """Continuous churn: exponential session and downtime durations.

    Each managed address alternates up/down; transitions call the supplied
    hooks so the overlay can run its join/leave protocol.  Used by the churn
    example and the ablation benches, not by the paper's main sweep.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        addresses: Sequence[int],
        rng: np.random.Generator,
        mean_uptime: float = 300.0,
        mean_downtime: float = 60.0,
        on_leave: Optional[Callable[[int], None]] = None,
        on_rejoin: Optional[Callable[[int], None]] = None,
    ) -> None:
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean_uptime and mean_downtime must be > 0")
        self.sim = sim
        self.network = network
        self.addresses = list(addresses)
        self.rng = rng
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.on_leave = on_leave
        self.on_rejoin = on_rejoin
        self.leave_count = 0
        self.rejoin_count = 0
        self._stopped = False

    def start(self) -> None:
        """Arm the first leave for every managed address."""
        for addr in self.addresses:
            self._arm_leave(addr)

    def stop(self) -> None:
        self._stopped = True

    def _arm_leave(self, addr: int) -> None:
        delay = float(self.rng.exponential(self.mean_uptime))
        self.sim.schedule(delay, lambda: self._leave(addr), label=f"churn-leave:{addr}")

    def _arm_rejoin(self, addr: int) -> None:
        delay = float(self.rng.exponential(self.mean_downtime))
        self.sim.schedule(delay, lambda: self._rejoin(addr), label=f"churn-rejoin:{addr}")

    def _leave(self, addr: int) -> None:
        if self._stopped or not self.network.is_up(addr):
            return
        self.network.set_down(addr)
        self.leave_count += 1
        if self.on_leave is not None:
            self.on_leave(addr)
        self._arm_rejoin(addr)

    def _rejoin(self, addr: int) -> None:
        if self._stopped:
            return
        self.network.set_up(addr)
        self.rejoin_count += 1
        if self.on_rejoin is not None:
            self.on_rejoin(addr)
        self._arm_leave(addr)
