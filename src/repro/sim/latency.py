"""Per-link latency models for the simulated datagram network.

The paper's TreeP is a UDP-based overlay; lookup correctness must not depend
on delivery timing, but maintenance (keep-alives, countdown elections) does.
All models draw from a dedicated RNG stream so enabling/disabling other
randomness never changes message timing.
"""

from __future__ import annotations

import abc

import numpy as np


class LatencyModel(abc.ABC):
    """Samples one-way datagram latency (seconds) for a (src, dst) pair."""

    @abc.abstractmethod
    def sample(self, src: int, dst: int) -> float:
        """Latency for one datagram from *src* to *dst*; must be > 0."""

    @abc.abstractmethod
    def expected(self) -> float:
        """Mean latency — used to size protocol timeouts.

        Abstract on purpose: timeout sizing calls this for *every* model,
        so a subclass without it would fail at runtime mid-experiment
        rather than at construction.
        """


class ConstantLatency(LatencyModel):
    """Every datagram takes exactly *value* seconds.

    Useful in unit tests where deterministic arrival order matters.
    """

    def __init__(self, value: float = 0.01) -> None:
        if value <= 0:
            raise ValueError(f"latency must be > 0, got {value}")
        self.value = float(value)

    def sample(self, src: int, dst: int) -> float:
        return self.value

    def expected(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value})"


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]`` — a crude WAN model.

    Samples are drawn from the generator in blocks: NumPy fills an array
    with exactly the same per-element doubles (same bit-generator stream,
    same ``low + (high - low) * u`` transform) as repeated scalar
    ``uniform`` calls, so blocked and scalar sampling produce identical
    sequences while amortising the per-call NumPy dispatch overhead —
    which is material when every datagram of a 10k-node run samples once.
    """

    _BLOCK = 512

    def __init__(self, rng: np.random.Generator, low: float = 0.005, high: float = 0.05) -> None:
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got {low}, {high}")
        self.rng = rng
        self.low = float(low)
        self.high = float(high)
        self._block: list = []
        self._next = 0

    def sample(self, src: int, dst: int) -> float:
        i = self._next
        block = self._block
        if i >= len(block):
            block = self._block = self.rng.uniform(
                self.low, self.high, size=self._BLOCK).tolist()
            i = 0
        self._next = i + 1
        return block[i]

    def expected(self) -> float:
        return 0.5 * (self.low + self.high)

    def __repr__(self) -> str:
        return f"UniformLatency([{self.low}, {self.high}])"


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency — the classical internet RTT shape.

    Parameters are the underlying normal's ``mu``/``sigma``; the sample is
    ``base + lognormal(mu, sigma)`` so there is a hard propagation floor.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mu: float = -4.0,
        sigma: float = 0.5,
        base: float = 0.002,
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        self.rng = rng
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.base = float(base)

    def sample(self, src: int, dst: int) -> float:
        return self.base + float(self.rng.lognormal(self.mu, self.sigma))

    def expected(self) -> float:
        return self.base + float(np.exp(self.mu + self.sigma**2 / 2))

    def __repr__(self) -> str:
        return f"LogNormalLatency(mu={self.mu}, sigma={self.sigma}, base={self.base})"
