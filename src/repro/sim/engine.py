"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event queue.  Protocol code
never sleeps or spins; it schedules callbacks at future virtual times.  The
kernel is deliberately tiny — the hot loop does one heap pop and one callback
per event, with no allocation beyond the event records themselves (see the
hpc-parallel guidance: keep the inner loop allocation-light, profile before
doing anything cleverer).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.events import Callback, Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the kernel detects an inconsistent schedule."""


class Simulator:
    """Single-threaded discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds; the unit is arbitrary
        but all built-in latency/maintenance defaults assume seconds).

    Usage
    -----
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    __slots__ = ("_queue", "_now", "_running", "_event_count", "max_events",
                 "_event_hook")

    def __init__(self, start_time: float = 0.0) -> None:
        self._queue = EventQueue()
        self._now = float(start_time)
        self._running = False
        self._event_count = 0
        #: Safety valve: ``run`` raises after this many events (protects
        #: against accidental infinite keep-alive loops in tests).
        self.max_events: Optional[int] = None
        self._event_hook: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total events fired since construction."""
        return self._event_count

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callback, label: str = "") -> Event:
        """Schedule *callback* to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} for event {label!r}")
        return self._queue.push(self._now + delay, callback, label=label)

    def schedule_at(self, time: float, callback: Callback, label: str = "") -> Event:
        """Schedule *callback* at absolute virtual *time* (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before now={self._now}"
            )
        return self._queue.push(time, callback, label=label)

    def call_soon(self, callback: Callback, label: str = "") -> Event:
        """Schedule *callback* at the current time (after pending same-time events)."""
        return self._queue.push(self._now, callback, label=label)

    def set_event_hook(self, hook: Optional[Callable[[Event], None]]) -> None:
        """Install (or clear, with ``None``) the per-event observer.

        The observability layer uses this to count event labels and —
        opt-in — record the raw event stream.  The hook fires after the
        clock advances and before the callback runs.  It must not schedule
        events or draw RNG; the hot loops pay one cached ``is not None``
        check per event when no hook is installed.
        """
        self._event_hook = hook

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        if ev.time < self._now:
            raise SimulationError(
                f"event {ev.label!r} scheduled at {ev.time} < now {self._now}"
            )
        self._now = ev.time
        self._event_count += 1
        if self._event_hook is not None:
            self._event_hook(ev)
        ev.callback()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or the clock passes *until*.

        When *until* is given, the clock is advanced to exactly *until* even
        if the last event fires earlier, so periodic processes observe a
        consistent end time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while True:
                if self.max_events is not None and self._event_count >= self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "runaway periodic process?"
                    )
                nxt = self._queue.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_for(self, duration: float) -> None:
        """Run for *duration* virtual time units from now."""
        self.run(until=self._now + duration)

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run until idle, returning the number of events fired.

        Unlike :meth:`run`, enforces a hard event budget so protocol bugs
        (e.g. two nodes ping-ponging updates forever) fail loudly.  The
        loop inlines :meth:`step` — one bound-method call per event is
        measurable across the million-event drains of the scale benches.
        """
        fired = 0
        queue = self._queue
        hook = self._event_hook
        while fired < max_events:
            ev = queue.pop()
            if ev is None:
                return fired
            if ev.time < self._now:
                raise SimulationError(
                    f"event {ev.label!r} scheduled at {ev.time} < now {self._now}"
                )
            self._now = ev.time
            self._event_count += 1
            if hook is not None:
                hook(ev)
            ev.callback()
            fired += 1
        raise SimulationError(f"drain exceeded {max_events} events")

    # ---------------------------------------------------------------- timers
    def every(
        self,
        interval: float,
        callback: Callback,
        *,
        jitter: Callable[[], float] | None = None,
        label: str = "",
    ) -> "PeriodicTimer":
        """Create (and start) a periodic timer firing every *interval*.

        ``jitter()``, when given, is sampled each period and added to the
        interval — used to de-synchronise keep-alive storms.
        """
        timer = PeriodicTimer(self, interval, callback, jitter=jitter, label=label)
        timer.start()
        return timer


class TimerGroup:
    """Owns a set of :class:`PeriodicTimer`\\ s with one-call cancellation.

    The service layer (:mod:`repro.cluster`) files every periodic task a
    service registers into a group — per service, or per service per node —
    so tearing a service (or a departed node) down cannot leak a re-arming
    timer.  Adding a timer opportunistically prunes already-stopped ones,
    keeping the group bounded for services that start and stop tasks
    repeatedly (e.g. per-job heartbeat loops).
    """

    __slots__ = ("_timers",)

    def __init__(self) -> None:
        self._timers: list[PeriodicTimer] = []

    def add(self, timer: "PeriodicTimer") -> "PeriodicTimer":
        """Track *timer*; returns it for call-through convenience."""
        self._timers = [t for t in self._timers if t.running]
        self._timers.append(timer)
        return timer

    def stop_all(self) -> int:
        """Stop every tracked timer; returns how many were still running."""
        stopped = 0
        for t in self._timers:
            if t.running:
                t.stop()
                stopped += 1
        self._timers.clear()
        return stopped

    def active(self) -> list["PeriodicTimer"]:
        return [t for t in self._timers if t.running]

    def __len__(self) -> int:
        return len(self.active())


class PeriodicTimer:
    """Re-arming timer owned by a :class:`Simulator`.

    The timer re-schedules itself *after* invoking the callback, so a
    callback that calls :meth:`stop` prevents the next occurrence.
    """

    __slots__ = ("_sim", "interval", "_callback", "_jitter", "_event", "_stopped", "label")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callback,
        *,
        jitter: Callable[[], float] | None = None,
        label: str = "",
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, got {interval}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self._event: Optional[Event] = None
        self._stopped = True
        self.label = label

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        if not self._stopped:
            return
        self._stopped = False
        self._arm()

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _arm(self) -> None:
        delay = self.interval + (self._jitter() if self._jitter is not None else 0.0)
        if delay <= 0:
            delay = self.interval
        self._event = self._sim.schedule(delay, self._fire, label=self.label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._arm()
