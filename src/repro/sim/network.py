"""A UDP-like datagram network connecting simulated processes.

Semantics (deliberately matching what a UDP overlay sees):

* **Unreliable** — datagrams are dropped with probability ``loss`` and
  silently when the destination is down or unknown.  No acknowledgements;
  protocols that need liveness use keep-alives, exactly as TreeP does.
* **Unordered between pairs only via latency** — each datagram samples its
  own latency, so two messages to the same peer may arrive out of order.
* **No connections** — any process can send to any address it knows.

The network also keeps per-message-type counters, which the maintenance
overhead benches read to compare control traffic between configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, Optional, Set

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel


@dataclass(slots=True)
class Datagram:
    """One simulated UDP packet."""

    src: int
    dst: int
    payload: Any
    send_time: float
    size: int = 0  # approximate wire size in bytes, for overhead accounting


#: type -> (type name, event label) — computed once per payload type so the
#: per-datagram path never re-derives ``type(payload).__name__`` or
#: re-formats the scheduling label (both showed up in 10k-node profiles).
_TYPE_META: Dict[type, tuple] = {}


def _type_meta(ptype: type) -> tuple:
    meta = _TYPE_META.get(ptype)
    if meta is None:
        name = ptype.__name__
        meta = (name, f"dgram:{name}")
        _TYPE_META[ptype] = meta
    return meta


class Process:  # repro-lint: disable=RPR401 per-node engine base, not a per-message record; subsystems attach ad-hoc attributes (obs, maintenance, service state) so it keeps a __dict__
    """Base class for anything that receives datagrams.

    Subclasses implement :meth:`on_datagram`.  Registration with the network
    assigns the address; the address is the node's overlay ID in all the
    overlays built here (TreeP, Chord, flood).
    """

    def __init__(self, address: int) -> None:
        self.address = int(address)
        self.network: Optional["Network"] = None

    # -- wiring -----------------------------------------------------------
    def attach(self, network: "Network") -> None:
        self.network = network

    @property
    def sim(self) -> Simulator:
        assert self.network is not None, "process not attached to a network"
        return self.network.sim

    # -- I/O ---------------------------------------------------------------
    def send(self, dst: int, payload: Any) -> None:
        """Fire-and-forget datagram to *dst*."""
        assert self.network is not None, "process not attached to a network"
        self.network.send(self.address, dst, payload)

    def on_datagram(self, dgram: Datagram) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(slots=True)
class NetworkStats:
    """Aggregate traffic counters."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_down: int = 0
    dropped_unknown: int = 0
    dropped_partition: int = 0
    bytes_sent: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)

    def drop_total(self) -> int:
        return (
            self.dropped_loss
            + self.dropped_down
            + self.dropped_unknown
            + self.dropped_partition
        )


class Network:  # repro-lint: disable=RPR401 one instance per simulation; slotting buys nothing and hooks/partition state evolve per PR
    """The datagram fabric.

    Parameters
    ----------
    sim:
        The event kernel datagrams are scheduled on.
    latency:
        Per-datagram latency model (default: 10 ms constant).
    loss:
        Independent per-datagram drop probability in ``[0, 1)``.
    rng:
        Generator used *only* for loss decisions (timing noise lives in the
        latency model's own stream).
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency(0.01)
        self.loss = float(loss)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._procs: Dict[int, Process] = {}
        self._down: Set[int] = set()
        #: Monotonic count of liveness transitions (registrations, crashes,
        #: revivals) — a cheap exact invalidation key for caches derived
        #: from the live population (see LoadBalancer).
        self.liveness_epoch: int = 0
        self.stats = NetworkStats()
        #: Optional predicate; return True to block delivery (partitions).
        self.partition_filter: Optional[Callable[[int, int], bool]] = None
        #: Optional per-link loss predicate (return True to drop, counted
        #: as ``dropped_loss``) — the seam burst-loss models plug into
        #: (:class:`~repro.sim.conditions.GilbertElliott`).  Evaluated
        #: after the scalar ``loss`` draw so installing one never shifts
        #: the scalar stream.
        self.loss_model: Optional[Callable[[int, int], bool]] = None
        #: Optional hook observing every delivered datagram (tracing).
        self.delivery_hook: Optional[Callable[[Datagram], None]] = None
        #: Liveness transition hooks, fired exactly once per transition
        #: (``set_down`` on an up process / ``set_up`` on a down one) with
        #: the affected address.  The service layer (:mod:`repro.cluster`)
        #: uses these to run churn callbacks and registry-owned cleanup no
        #: matter which driver crashed the node (``TreePNetwork.fail_nodes``,
        #: a :class:`~repro.sim.failures.FailureSchedule`, or a direct call).
        self.down_hooks: list[Callable[[int], None]] = []
        self.up_hooks: list[Callable[[int], None]] = []

    # ---------------------------------------------------------- membership
    def register(self, proc: Process) -> None:
        """Add *proc* to the fabric; its address must be unique."""
        if proc.address in self._procs:
            raise ValueError(f"address {proc.address} already registered")
        self._procs[proc.address] = proc
        self._down.discard(proc.address)
        proc.attach(self)

    def unregister(self, address: int) -> None:
        """Remove a process entirely (it also stops being 'down')."""
        self._procs.pop(address, None)
        self._down.discard(address)

    def processes(self) -> list[Process]:
        return list(self._procs.values())

    def get(self, address: int) -> Optional[Process]:
        return self._procs.get(address)

    def __contains__(self, address: int) -> bool:
        return address in self._procs

    def __len__(self) -> int:
        return len(self._procs)

    # -------------------------------------------------------------- up/down
    def set_down(self, address: int) -> None:
        """Crash-stop *address*: it silently drops all traffic."""
        if address in self._procs and address not in self._down:
            self._down.add(address)
            self.liveness_epoch += 1
            for hook in list(self.down_hooks):
                hook(address)

    def set_up(self, address: int) -> None:
        if address in self._down:
            self._down.discard(address)
            self.liveness_epoch += 1
            for hook in list(self.up_hooks):
                hook(address)

    def is_up(self, address: int) -> bool:
        return address in self._procs and address not in self._down

    def up_addresses(self) -> list[int]:
        return [a for a in self._procs if a not in self._down]

    def down_count(self) -> int:
        return len(self._down)

    # ------------------------------------------------------------------ I/O
    def send(self, src: int, dst: int, payload: Any) -> None:
        """Inject one datagram.  A down *src* cannot send."""
        stats = self.stats
        stats.sent += 1
        tname, label = _type_meta(type(payload))
        by_type = stats.by_type
        by_type[tname] = by_type.get(tname, 0) + 1
        size = getattr(payload, "wire_size", 64)
        stats.bytes_sent += size

        if src in self._down:
            stats.dropped_down += 1
            return
        if dst not in self._procs:
            stats.dropped_unknown += 1
            return
        if self.partition_filter is not None and self.partition_filter(src, dst):
            stats.dropped_partition += 1
            return
        if self.loss > 0.0 and self.rng.random() < self.loss:
            stats.dropped_loss += 1
            return
        if self.loss_model is not None and self.loss_model(src, dst):
            stats.dropped_loss += 1
            return

        sim = self.sim
        dgram = Datagram(src=src, dst=dst, payload=payload, send_time=sim.now, size=size)
        sim.schedule(self.latency.sample(src, dst),
                     partial(self._deliver, dgram), label=label)

    def _deliver(self, dgram: Datagram) -> None:
        # Destination may have died or left while the packet was in flight.
        proc = self._procs.get(dgram.dst)
        if proc is None:
            self.stats.dropped_unknown += 1
            return
        if dgram.dst in self._down:
            self.stats.dropped_down += 1
            return
        self.stats.delivered += 1
        if self.delivery_hook is not None:
            self.delivery_hook(dgram)
        proc.on_datagram(dgram)

    # ------------------------------------------------------------ accounting
    def reset_stats(self) -> None:
        self.stats = NetworkStats()
