#!/usr/bin/env python3
"""Grid resource discovery + load balancing — the DGET use case (§I).

Builds a TreeP overlay over a DGET-style population (10% beefy servers,
90% desktops), then:

1. answers capability-constrained queries by walking the hierarchy's
   capacity aggregates (pruning subtrees that can't match), and
2. places a burst of compute tasks with the hierarchical load balancer.

The point of the demo: the capacity-aware promotion puts the servers in
the upper layers, so both services get their answers in O(log n) steps.

Run:  python examples/grid_resource_discovery.py
"""

import numpy as np

from repro import Cluster, TreePConfig
from repro.services.discovery import Constraint
from repro.services.loadbalance import Task
from repro.workloads import grid_cluster_mix


def main() -> None:
    rng = np.random.default_rng(77)
    caps = grid_cluster_mix(512, rng, server_fraction=0.1)
    cluster = (Cluster(config=TreePConfig.paper_case2(), seed=77)
               .build(n=512, capacities=caps)
               .with_discovery()
               .with_loadbalance())
    net, layout = cluster.net, cluster.layout
    print(f"built 512-peer grid, height={layout.height} (variable nc)")

    # Where did the servers end up?  Count >=16-core nodes per level.
    for lvl in range(layout.height, 0, -1):
        bus = layout.levels[lvl]
        beefy = sum(1 for i in bus if net.capacities[i].cpu >= 16)
        print(f"  level {lvl}: {beefy}/{len(bus)} nodes with >= 16 cores")

    directory = cluster.directory
    queries = [
        Constraint(min_cpu=16, min_memory_gb=64),
        Constraint(min_cpu=4, min_bandwidth_mbps=100),
        Constraint(min_cpu=32, min_memory_gb=128, min_bandwidth_mbps=500),
    ]
    for c in queries:
        res = directory.query(c, max_results=4)
        print(f"query cpu>={c.min_cpu} mem>={c.min_memory_gb} bw>={c.min_bandwidth_mbps}: "
              f"{len(res.matches)} matches in {res.hops} hops "
              f"({res.subtrees_pruned} subtrees pruned)")
        for m in res.matches:
            cap = net.capacities[m]
            assert cap.cpu >= c.min_cpu and cap.memory_gb >= c.min_memory_gb

    # Task placement.
    lb = cluster.balancer
    tasks = [Task(i, cpu_demand=float(rng.choice([0.5, 1.0, 2.0]))) for i in range(400)]
    placements = lb.place_many(tasks)
    placed = [p for p in placements if p.node is not None]
    print(f"\nplaced {len(placed)}/400 tasks, "
          f"mean {np.mean([p.hops for p in placed]):.1f} hops to placement, "
          f"utilisation imbalance (CV) {lb.imbalance():.2f}")
    # The heavy lifting should land on the strong nodes.
    heavy = [p.node for p in placed if p.task.cpu_demand >= 2.0]
    if heavy:
        print(f"heavy tasks went to nodes with mean "
              f"{np.mean([net.capacities[n].cpu for n in heavy]):.1f} cores "
              f"(population mean {np.mean([c.cpu for c in caps]):.1f})")


if __name__ == "__main__":
    main()
