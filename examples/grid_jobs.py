#!/usr/bin/env python3
"""Grid job execution on TreeP: checkpointed re-execution surviving churn.

Builds a 128-node overlay, starts the replicated store (N=3, W=2, R=2) the
workers checkpoint into, and submits a mixed grid workload — Poisson job
arrivals with heterogeneous CPU demands plus a layered DAG batch — through
the message-level scheduler.  While the jobs run, 30% of the population is
killed in bursts; between bursts the overlay heals its tables, anti-entropy
re-replicates, and the scheduler fails over if its own host died.  Workers
killed mid-job are detected by missed heartbeats, re-placed through the
resource-discovery aggregates, and *resume from their last checkpoint*
instead of restarting — so every submitted job still completes.

Run:  python examples/grid_jobs.py
"""

from repro import Cluster, ComputeConfig, QuorumConfig, TreePConfig
from repro.workloads import JobWorkload


def main() -> None:
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=42)
               .build(n=128)
               .with_storage(QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0)
               .with_compute(ComputeConfig(checkpoint_interval=8.0)))
    net, grid, ae = cluster.net, cluster.compute, cluster.anti_entropy

    wl = JobWorkload(rng=net.rng.get("example-jobs"), arrival_rate=1.0,
                     work_mean=120.0, constrained_fraction=0.25)
    specs = wl.jobs(30) + wl.dag_batch((4, 3, 1), work=50.0)
    grid.schedule_submissions(specs)
    print(f"submitted {len(specs)} jobs "
          f"(30 stream + {len(specs) - 30} DAG) to a {len(net.ids)}-node grid")

    rng = net.rng.get("example-churn")
    order = [int(v) for v in rng.permutation(net.ids)]
    total, burst = int(0.30 * len(net.ids)), max(1, len(net.ids) // 16)
    print(f"\n{'t':>5} {'dead%':>6} {'done':>7} {'re-exec':>8} "
          f"{'stolen':>7} {'failover':>9}")
    killed = 0
    while killed < total:
        cluster.run_for(15.0)
        step = order[killed:killed + min(burst, total - killed)]
        killed += len(step)
        cluster.fail_nodes(step, heal=True)    # churn callbacks + healing
        ae.converge()                          # re-replication
        failed_over = grid.ensure_scheduler()  # scheduler failover
        # (no manual directory refresh: the discovery service watched the
        # leave callbacks and resyncs its aggregates on the next query)
        s = grid.stats()
        print(f"{net.sim.now:5.0f} {100 * killed / len(net.ids):6.0f} "
              f"{s.completed:3d}/{s.submitted:<3d} {s.reexecutions:8d} "
              f"{s.steals:7d} {'yes' if failed_over else '':>9}")

    done = grid.run_until_done(timeout=2000.0)
    s = grid.stats()
    print(f"\nall jobs terminal: {done}")
    for name, value in s.summary_rows():
        print(f"  {name:<24} {value}")
    print("\nEvery job completes despite 30% of the grid dying mid-run:")
    print("missed heartbeats trigger re-placement, and the quorum-stored")
    print("checkpoints mean re-executions resume rather than restart —")
    print(f"only {s.wasted_work:.0f}s of {s.executed_work:.0f}s executed "
          f"was wasted (goodput {s.goodput:.3f}).")
    cluster.shutdown()


if __name__ == "__main__":
    main()
