#!/usr/bin/env python3
"""TreeP vs Chord vs Gnutella-style flooding on identical workloads.

The quantitative version of the paper's §I/§II positioning:

* flooding resolves everything nearby but costs hundreds of messages per
  lookup (the "blind flood … does not scale well" critique);
* Chord is log-n cheap but its rigid ring needs stabilisation to survive
  failures;
* TreeP matches the log-n hop count with a handful of maintained links and
  heals laterally through its replicated neighbour knowledge.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro import TreePConfig, TreePNetwork
from repro.baselines import ChordNetwork, FloodNetwork
from repro.core.repair import PAPER_POLICY, apply_failure_step

N = 512
LOOKUPS = 200
DEAD_FRACTION = 0.30


def fresh_pairs(rng, population, count):
    pairs = []
    pop = list(population)
    while len(pairs) < count:
        o, t = (int(x) for x in rng.choice(pop, 2, replace=False))
        pairs.append((o, t))
    return pairs


def main() -> None:
    rng = np.random.default_rng(123)
    rows = []

    # --- TreeP -----------------------------------------------------------
    treep = TreePNetwork(config=TreePConfig.paper_case1(), seed=1)
    treep.build(N)
    m0 = treep.network.stats.sent
    res = treep.run_lookup_batch(fresh_pairs(rng, treep.ids, LOOKUPS), "G")
    msgs = (treep.network.stats.sent - m0) / LOOKUPS
    victims = [int(v) for v in rng.choice(treep.ids, int(DEAD_FRACTION * N), replace=False)]
    treep.fail_nodes(victims)
    apply_failure_step(treep, victims, PAPER_POLICY)
    res_f = treep.run_lookup_batch(fresh_pairs(rng, treep.alive_ids(), LOOKUPS), "G")
    rows.append(("TreeP (G)", res, res_f, msgs))

    # --- Chord -----------------------------------------------------------
    chord = ChordNetwork(seed=1)
    chord.build(N)
    m0 = chord.network.stats.sent
    res = chord.run_lookup_batch(fresh_pairs(rng, chord.ids, LOOKUPS))
    msgs = (chord.network.stats.sent - m0) / LOOKUPS
    victims = [int(v) for v in rng.choice(chord.ids, int(DEAD_FRACTION * N), replace=False)]
    chord.fail_nodes(victims)
    chord.repair_step()
    res_f = chord.run_lookup_batch(fresh_pairs(rng, chord.alive_ids(), LOOKUPS))
    rows.append(("Chord", res, res_f, msgs))

    # --- Flooding --------------------------------------------------------
    flood = FloodNetwork(seed=1, degree=4, default_ttl=7)
    flood.build(N)
    m0 = flood.network.stats.sent
    res = flood.run_lookup_batch(fresh_pairs(rng, flood.ids, LOOKUPS))
    msgs = (flood.network.stats.sent - m0) / LOOKUPS
    victims = [int(v) for v in rng.choice(flood.ids, int(DEAD_FRACTION * N), replace=False)]
    flood.fail_nodes(victims)
    flood.repair_step()
    res_f = flood.run_lookup_batch(fresh_pairs(rng, flood.alive_ids(), LOOKUPS))
    rows.append(("Flooding", res, res_f, msgs))

    # --- report ----------------------------------------------------------
    print(f"{'overlay':<12} {'success%':>9} {'hops':>6} {'msgs/lookup':>12} "
          f"{'success%@30%dead':>17}")
    for name, healthy, failed, msgs in rows:
        ok = [r for r in healthy if r.found]
        okf = [r for r in failed if r.found]
        print(f"{name:<12} {100 * len(ok) / len(healthy):9.1f} "
              f"{np.mean([r.hops for r in ok]):6.2f} {msgs:12.1f} "
              f"{100 * len(okf) / len(failed):17.1f}")
    print("\nExpected: flooding pays 2 orders of magnitude more messages;")
    print("TreeP and Chord both route in O(log n); TreeP keeps fewer")
    print("actively-maintained connections per node (paper §III.e).")


if __name__ == "__main__":
    main()
