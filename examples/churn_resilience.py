#!/usr/bin/env python3
"""Churn resilience: the paper's §IV stress test, end to end.

Builds the case-1 network, then repeatedly disconnects 5% of the initial
population (no repopulation — the paper's harshest setting), letting the
maintenance fixed point heal laterally between bursts, and reports the
failure rate and hop statistics per step — i.e. Figures A/B as one script.

Run:  python examples/churn_resilience.py
"""

import numpy as np

from repro import TreePConfig, TreePNetwork
from repro.core.repair import PAPER_POLICY, apply_failure_step
from repro.sim.failures import FailureSchedule
from repro.workloads import LookupWorkload


def main() -> None:
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=99)
    layout = net.build(n=1024)
    print(f"built n=1024, height={layout.height}")
    print(f"{'dead%':>6} {'alive':>6} {'G fail%':>8} {'NG fail%':>9} "
          f"{'G hops':>7} {'NG hops':>8}")

    rng = net.rng.get("example")
    schedule = FailureSchedule(net.ids, rng)
    workload = LookupWorkload(rng=net.rng.get("example-lookups"))

    for step in schedule.steps():
        schedule.apply_step(net.network, step)
        apply_failure_step(net, step.newly_failed, PAPER_POLICY)
        if len(step.surviving) < 10:
            break
        row = [f"{100 * step.cumulative_failed_fraction:6.0f}",
               f"{len(step.surviving):6d}"]
        hops_cells = []
        for algo in ("G", "NG"):
            results = net.run_lookup_batch(
                workload.pairs(step.surviving, 150), algo
            )
            found = [r for r in results if r.found]
            fail_pct = 100 * (1 - len(found) / len(results))
            row.append(f"{fail_pct:8.1f}" if algo == "G" else f"{fail_pct:9.1f}")
            hops = np.mean([r.hops for r in found]) if found else float("nan")
            hops_cells.append(f"{hops:7.2f}" if algo == "G" else f"{hops:8.2f}")
        print(" ".join(row + hops_cells))

    print("\nExpected shape (paper §IV.a): failures ~10% around 30% dead,")
    print("~25-30% around 50% dead; average hops roughly flat until ~70%.")


if __name__ == "__main__":
    main()
