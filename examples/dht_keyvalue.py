#!/usr/bin/env python3
"""DHT on TreeP: the "easily modified to provide DHT functionality" claim.

Stores a few hundred key/value pairs on the overlay, kills a third of the
network, heals, and shows that replication on the level-0 links keeps most
values retrievable — the overlay's own maintenance doubles as the DHT's.

Run:  python examples/dht_keyvalue.py
"""

import numpy as np

from repro import Cluster, TreePConfig


def main() -> None:
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=11)
               .build(n=256)
               .with_dht(replicas=3))
    net, dht = cluster.net, cluster.dht

    # Store 200 job records.
    keys = [f"job/{i:04d}" for i in range(200)]
    for i, key in enumerate(keys):
        result = dht.put(key, {"job": i, "state": "queued"})
        assert result.found, f"put failed for {key}"
    holders = dht.stored_keys()
    per_node = [len(v) for v in holders.values()]
    print(f"stored 200 keys x3 replicas on {len(holders)} nodes "
          f"(mean {np.mean(per_node):.1f} keys/node, max {max(per_node)})")

    # Read everything back.
    hits = sum(dht.get(k).found for k in keys)
    print(f"before failures: {hits}/200 GETs hit")

    # Kill a third of the network, heal, read again.
    rng = np.random.default_rng(5)
    victims = [int(v) for v in rng.choice(net.ids, len(net.ids) // 3, replace=False)]
    cluster.fail_nodes(victims, heal=True)

    alive = cluster.alive_ids()
    hits = 0
    for i, k in enumerate(keys):
        # (index, not builtin hash(k): str hashes are salted per process,
        # which broke the example's run-to-run determinism)
        if dht.get(k, via=alive[i % len(alive)]).found:
            hits += 1
    print(f"after 33% of nodes crashed: {hits}/200 GETs still hit "
          f"(3-way level-0 replication)")


if __name__ == "__main__":
    main()
