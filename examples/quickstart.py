#!/usr/bin/env python3
"""Quickstart: build a TreeP overlay, inspect it, and resolve some IDs.

Covers the core public API in ~40 lines of action:

1. configure the overlay (the paper's case 1: fixed ``nc = 4``),
2. build a steady-state network of heterogeneous peers,
3. look at the hierarchy the capacity-aware promotion produced,
4. run lookups with each of the three routing algorithms (G / NG / NGSA).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cluster, LookupAlgorithm, TreePConfig


def main() -> None:
    # 1. Configure: paper case 1 — every parent holds at most 4 children.
    config = TreePConfig.paper_case1()

    # 2. Build 512 peers with the default heterogeneous capacity mix.
    #    `Cluster` is the unified entry point; services (storage, compute,
    #    dht, …) would chain on with `.with_storage(...)` etc. — here we
    #    only need the raw overlay underneath (`cluster.net`).
    cluster = Cluster(config=config, seed=2005).build(n=512)
    net, layout = cluster.net, cluster.layout

    # 3. Inspect the hierarchy.
    print(f"height h = {layout.height} "
          f"(paper formula log_c((n+1)/2) with c = {layout.average_children():.2f})")
    for lvl, bus in enumerate(layout.levels):
        print(f"  level {lvl}: {len(bus):4d} nodes")
    sizes = list(net.routing_table_sizes().values())
    print(f"routing tables: mean {np.mean(sizes):.1f} entries, max {max(sizes)}")
    conns = list(net.active_connection_counts().values())
    print(f"active connections: mean {np.mean(conns):.1f}, max {max(conns)}")

    # Capacity-aware promotion: upper layers should be the strong peers.
    top = layout.levels[layout.height]
    top_scores = [net.capacities[i].score() for i in top]
    all_scores = [c.score() for c in net.capacities.values()]
    print(f"top-level capacity score {np.mean(top_scores):.2f} "
          f"vs population mean {np.mean(all_scores):.2f}")

    # 4. Resolve 50 random IDs with each algorithm.
    rng = np.random.default_rng(7)
    pairs = []
    while len(pairs) < 50:
        o, t = (int(x) for x in rng.choice(net.ids, 2, replace=False))
        pairs.append((o, t))
    for algo in LookupAlgorithm:
        results = net.run_lookup_batch(pairs, algo)
        found = [r for r in results if r.found]
        print(f"{algo.value:>4}: {len(found)}/{len(results)} resolved, "
              f"avg {np.mean([r.hops for r in found]):.2f} hops "
              f"(log2 n = {np.log2(len(net.ids)):.1f})")


if __name__ == "__main__":
    main()
