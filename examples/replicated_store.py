#!/usr/bin/env python3
"""Replicated storage on TreeP: quorum reads/writes surviving churn.

Builds a 256-node overlay, loads a N=3/W=2/R=2 replicated store, then kills
30% of the population in 5% bursts.  Between bursts the overlay heals its
routing tables and the anti-entropy task re-replicates under-replicated
keys — so unlike the plain DHT example (``dht_keyvalue.py``), *every* key
stays readable the whole way down.

Run:  python examples/replicated_store.py
"""

from repro import Cluster, QuorumConfig, TreePConfig


def main() -> None:
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=42)
               .build(n=256)
               .with_storage(QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0))
    store, ae = cluster.storage, cluster.anti_entropy

    keys = [f"job/{i:04d}" for i in range(200)]
    for i, key in enumerate(keys):
        result = store.put(key, {"job": i, "state": "queued"})
        assert result.ok, f"quorum write failed for {key}"
    print(f"stored {len(keys)} keys x{store.quorum.n} replicas "
          f"(W={store.quorum.w}, R={store.quorum.r})")

    print(f"{'dead%':>6} {'alive':>6} {'readable':>9} {'min rf':>7} "
          f"{'repairs':>8}")

    net = cluster.net
    rng = net.rng.get("example")
    order = [int(v) for v in rng.permutation(net.ids)]
    total, burst = int(0.30 * len(net.ids)), max(1, len(net.ids) // 32)
    killed = 0
    while killed < total:
        step = order[killed:killed + min(burst, total - killed)]
        killed += len(step)
        cluster.fail_nodes(step, heal=True)  # churn callbacks + table healing
        ae.converge()                        # re-replication
        repairs = sum(r.repairs_sent for r in ae.reports)
        alive = cluster.alive_ids()
        readable = sum(
            store.get(k, via=alive[i % len(alive)]).found
            for i, k in enumerate(keys)
        )
        rfs = store.replication_factors()
        print(f"{100 * killed / len(net.ids):6.0f} {len(alive):6d} "
              f"{readable:4d}/{len(keys):<4d} {min(rfs.values()):7d} "
              f"{repairs:8d}")

    print("\nEvery key stays at full replication and 100% readable: the")
    print("anti-entropy task re-replicates after each burst, so no burst")
    print("ever catches a key with fewer live copies than it can lose.")
    print("(A key is only lost if one burst kills all N of its replicas")
    print("at once — shrink bursts or raise N to push that risk down.)")
    cluster.shutdown()


if __name__ == "__main__":
    main()
