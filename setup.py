"""Legacy shim for environments without PEP-517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.5.0",
    description=(
        "TreeP: a tree-based P2P network architecture (CLUSTER 2005) — "
        "full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
